"""Property tests: serial, thread and process codec backends agree.

The whole point of ``backend="process"`` is that it is a pure substrate
swap — whatever the block sizes, flush boundaries, compression levels
or mid-stream faults, the bytes on the wire and the bytes recovered
must be identical across the serial writer/reader, the thread pipeline
and the multiprocess shared-memory pipeline.  Hypothesis drives the
block plans; one module-scoped :class:`CodecProcessPool` keeps worker
boot out of every example.
"""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs.block import HEADER, HEADER_SIZE, BlockReader
from repro.core.levels import default_level_table
from repro.core.pipeline import make_block_decoder, make_block_encoder
from repro.core.procpool import CodecProcessPool, process_backend_available

LEVELS = default_level_table()

pytestmark = pytest.mark.skipif(
    not process_backend_available(),
    reason="process backend unavailable on this platform",
)


@pytest.fixture(scope="module")
def proc_pool():
    with CodecProcessPool(2, name="parity-proc") as pool:
        yield pool


@st.composite
def block_plan(draw):
    """(blocks, flush-after flags, level index) for one encode run."""
    blocks = draw(
        st.lists(st.binary(min_size=0, max_size=2048), min_size=1, max_size=6)
    )
    flushes = draw(
        st.lists(st.booleans(), min_size=len(blocks), max_size=len(blocks))
    )
    level = draw(st.integers(min_value=0, max_value=3))
    return blocks, flushes, level


def _encode(blocks, flushes, codec, **encoder_kwargs) -> bytes:
    sink = io.BytesIO()
    encoder = make_block_encoder(sink, **encoder_kwargs)
    for data, flush_after in zip(blocks, flushes):
        encoder.write_block(data, codec)
        if flush_after:
            encoder.flush()
    encoder.close()
    return sink.getvalue()


def _frame_offsets(stream: bytes):
    """[(frame_start, payload_len), ...] parsed straight off the wire."""
    offsets = []
    pos = 0
    while pos < len(stream):
        fields = HEADER.unpack_from(stream, pos)
        clen = fields[5]
        offsets.append((pos, clen))
        pos += HEADER_SIZE + clen
    return offsets


class TestEncodeParity:
    @given(plan=block_plan())
    @settings(max_examples=10, deadline=None)
    def test_thread_and_process_match_serial(self, proc_pool, plan):
        blocks, flushes, level = plan
        codec = LEVELS.codec(level)
        serial = _encode(blocks, flushes, codec, workers=1)
        threaded = _encode(blocks, flushes, codec, workers=2)
        processed = _encode(
            blocks, flushes, codec, workers=2, codec_pool=proc_pool
        )
        assert threaded == serial
        assert processed == serial

    @given(plan=block_plan())
    @settings(max_examples=5, deadline=None)
    def test_one_worker_process_backend_matches_serial(self, proc_pool, plan):
        blocks, flushes, level = plan
        codec = LEVELS.codec(level)
        serial = _encode(blocks, flushes, codec, workers=1)
        processed = _encode(
            blocks, flushes, codec, workers=1, codec_pool=proc_pool
        )
        assert processed == serial


class TestDecodeParity:
    @given(plan=block_plan())
    @settings(max_examples=10, deadline=None)
    def test_all_backends_recover_identical_blocks(self, proc_pool, plan):
        blocks, flushes, level = plan
        codec = LEVELS.codec(level)
        stream = _encode(blocks, flushes, codec, workers=1)
        serial = list(BlockReader(io.BytesIO(stream)))
        threaded = list(make_block_decoder(io.BytesIO(stream), workers=2))
        processed = list(
            make_block_decoder(io.BytesIO(stream), workers=2, codec_pool=proc_pool)
        )
        expected = [bytes(b) for b in blocks]
        assert [bytes(b) for b in serial] == expected
        assert [bytes(b) for b in threaded] == expected
        assert [bytes(b) for b in processed] == expected


class TestResyncParity:
    @given(
        blocks=st.lists(
            st.binary(min_size=1, max_size=2048), min_size=3, max_size=6
        ),
        level=st.integers(min_value=0, max_value=3),
        corrupt_at=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=10, deadline=None)
    def test_fault_recovery_identical_across_backends(
        self, proc_pool, blocks, level, corrupt_at
    ):
        """Flip one payload byte mid-stream: every backend must skip the
        same frame and recover the same suffix."""
        codec = LEVELS.codec(level)
        stream = bytearray(
            _encode(blocks, [False] * len(blocks), codec, workers=1)
        )
        offsets = _frame_offsets(bytes(stream))
        frame_start, clen = offsets[corrupt_at % len(offsets)]
        stream[frame_start + HEADER_SIZE + clen // 2] ^= 0xFF

        def decode(**kwargs):
            reader = make_block_decoder(
                io.BytesIO(bytes(stream)), resync=True, **kwargs
            )
            out = [bytes(b) for b in reader]
            reader.close()
            return out

        serial = decode(workers=1)
        threaded = decode(workers=2)
        processed = decode(workers=2, codec_pool=proc_pool)
        expected = [bytes(b) for b in blocks]
        # The corrupted frame is dropped, everything else survives.
        assert all(b in expected for b in serial)
        assert len(serial) >= len(blocks) - 1
        assert threaded == serial
        assert processed == serial
