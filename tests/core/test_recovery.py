"""Tests for ResyncBlockReader and the retry/backoff machinery."""

from __future__ import annotations

import io
import struct

import pytest

from repro.codecs import (
    HEADER_SIZE,
    BlockReader,
    BlockWriter,
    CorruptBlockError,
    LightZlibCodec,
    NullCodec,
    TruncatedStreamError,
    encode_block,
)
from repro.core.recovery import ResyncBlockReader, RetryPolicy, retry_call
from repro.telemetry.events import BUS, BlockSkipped


@pytest.fixture(autouse=True)
def clean_bus():
    BUS.clear()
    yield
    BUS.clear()


def make_stream(blocks, codec=None):
    codec = codec or LightZlibCodec()
    sink = io.BytesIO()
    writer = BlockWriter(sink)
    for block in blocks:
        writer.write_block(block, codec)
    return sink.getvalue()


BLOCKS = [bytes([65 + i]) * 3000 + b"tail %d" % i for i in range(6)]


class TestResyncCleanStream:
    def test_identical_to_strict_reader(self):
        wire = make_stream(BLOCKS)
        strict = list(BlockReader(io.BytesIO(wire)))
        resync = ResyncBlockReader(io.BytesIO(wire))
        assert list(resync) == strict == BLOCKS
        assert resync.blocks_read == len(BLOCKS)
        assert resync.blocks_skipped == 0
        assert resync.bytes_skipped == 0
        assert resync.bytes_in == len(wire)
        assert resync.bytes_out == sum(len(b) for b in BLOCKS)

    def test_empty_stream(self):
        reader = ResyncBlockReader(io.BytesIO(b""))
        assert reader.read_block() is None
        assert reader.blocks_skipped == 0

    def test_stored_fallback_codec(self):
        import os

        incompressible = [os.urandom(2000) for _ in range(4)]
        wire = make_stream(incompressible)
        assert list(ResyncBlockReader(io.BytesIO(wire))) == incompressible


class TestResyncCorruption:
    def test_payload_bitflip_loses_one_block(self):
        wire = bytearray(make_stream(BLOCKS))
        # Flip a byte inside the second frame's payload.
        frame0 = len(encode_block(BLOCKS[0], LightZlibCodec()).frame)
        wire[frame0 + HEADER_SIZE + 5] ^= 0xFF
        got = list(ResyncBlockReader(io.BytesIO(bytes(wire))))
        assert got == [BLOCKS[0]] + BLOCKS[2:]

    def test_header_magic_corruption(self):
        wire = bytearray(make_stream(BLOCKS))
        frame0 = len(encode_block(BLOCKS[0], LightZlibCodec()).frame)
        wire[frame0] ^= 0xFF  # kill the magic of frame 1
        reader = ResyncBlockReader(io.BytesIO(bytes(wire)))
        got = list(reader)
        assert got == [BLOCKS[0]] + BLOCKS[2:]
        assert reader.blocks_skipped == 1

    def test_corrupt_length_field_cannot_swallow_next_frames(self):
        # Set frame 1's compressed_len to a huge-but-in-bound value; the
        # CRC then fails and resync must still recover frames 2..n
        # instead of trusting the bogus length.
        wire = bytearray(make_stream(BLOCKS))
        frame0 = len(encode_block(BLOCKS[0], LightZlibCodec()).frame)
        struct.pack_into("<I", wire, frame0 + 12, 900_000)
        got = list(ResyncBlockReader(io.BytesIO(bytes(wire))))
        assert got == [BLOCKS[0]] + BLOCKS[2:]

    def test_garbage_prefix_skipped(self):
        prefix = b"\x00garbage\xffnoise"
        wire = prefix + make_stream(BLOCKS)
        reader = ResyncBlockReader(io.BytesIO(wire))
        assert list(reader) == BLOCKS
        assert reader.blocks_skipped == 1
        assert reader.bytes_skipped == len(prefix)

    def test_truncated_tail_counts_skip(self):
        wire = make_stream(BLOCKS)
        reader = ResyncBlockReader(io.BytesIO(wire[:-10]))
        got = list(reader)
        assert got == BLOCKS[:-1]
        assert reader.blocks_skipped == 1
        assert reader.bytes_skipped > 0

    def test_contiguous_damage_counts_one_region(self):
        wire = bytearray(make_stream(BLOCKS))
        frame0 = len(encode_block(BLOCKS[0], LightZlibCodec()).frame)
        frame1 = len(encode_block(BLOCKS[1], LightZlibCodec()).frame)
        # Destroy frames 1 and 2 entirely (magic bytes included).
        for off in range(frame0, frame0 + frame1 + HEADER_SIZE, 7):
            wire[off] ^= 0xA5
        reader = ResyncBlockReader(io.BytesIO(bytes(wire)))
        got = list(reader)
        assert BLOCKS[0] == got[0]
        assert got[-3:] == BLOCKS[3:]
        assert reader.blocks_skipped >= 1

    def test_publishes_block_skipped(self):
        events = []
        BUS.subscribe(events.append, BlockSkipped)
        wire = bytearray(make_stream(BLOCKS))
        frame0 = len(encode_block(BLOCKS[0], LightZlibCodec()).frame)
        wire[frame0 + HEADER_SIZE + 3] ^= 0x10
        reader = ResyncBlockReader(io.BytesIO(bytes(wire)))
        list(reader)
        assert len(events) == 1
        assert events[0].total_blocks_skipped == 1
        assert events[0].bytes_skipped == reader.bytes_skipped

    def test_null_codec_stream_recovers(self):
        wire = bytearray(make_stream(BLOCKS, codec=NullCodec()))
        frame0 = HEADER_SIZE + len(BLOCKS[0])
        wire[frame0 + HEADER_SIZE] ^= 0x40
        got = list(ResyncBlockReader(io.BytesIO(bytes(wire))))
        assert got == [BLOCKS[0]] + BLOCKS[2:]

    def test_strict_reader_still_raises(self):
        wire = bytearray(make_stream(BLOCKS))
        wire[HEADER_SIZE + 2] ^= 0x01
        with pytest.raises((CorruptBlockError, TruncatedStreamError)):
            list(BlockReader(io.BytesIO(bytes(wire))))


class TestRetryPolicy:
    def test_delay_count(self):
        assert len(list(RetryPolicy(attempts=5).delays())) == 4
        assert list(RetryPolicy(attempts=1).delays()) == []

    def test_deterministic(self):
        p = RetryPolicy(attempts=6, base=0.1, seed=9)
        assert list(p.delays()) == list(p.delays())

    def test_exponential_and_capped(self):
        delays = list(
            RetryPolicy(attempts=8, base=0.1, max_delay=0.4, jitter=0.0).delays()
        )
        assert delays[:3] == [0.1, 0.2, 0.4]
        assert all(d == 0.4 for d in delays[2:])

    def test_jitter_bounds(self):
        for d, nominal in zip(
            RetryPolicy(attempts=4, base=1.0, max_delay=1.0, jitter=0.2).delays(),
            [1.0, 1.0, 1.0],
        ):
            assert nominal * 0.8 <= d <= nominal * 1.2

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestRetryCall:
    def test_succeeds_after_failures(self):
        calls = []
        naps = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ConnectionRefusedError("not yet")
            return "ok"

        result = retry_call(
            flaky, policy=RetryPolicy(attempts=4, seed=1), sleep=naps.append
        )
        assert result == "ok"
        assert len(calls) == 3
        assert len(naps) == 2

    def test_exhaustion_reraises_last(self):
        def always_fails():
            raise ConnectionRefusedError("down")

        with pytest.raises(ConnectionRefusedError):
            retry_call(
                always_fails,
                policy=RetryPolicy(attempts=3),
                sleep=lambda _: None,
            )

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def boom():
            calls.append(1)
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            retry_call(boom, policy=RetryPolicy(attempts=5), sleep=lambda _: None)
        assert len(calls) == 1
