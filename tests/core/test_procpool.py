"""Tests for the multiprocess shared-memory codec backend.

Covers the :class:`~repro.core.buffers.SharedSlabPool` ring, the
:class:`~repro.core.procpool.CodecProcessPool` job semantics (parity
with the serial codec steps, stored fallback, oversize inline path,
error transport), worker-crash containment, shutdown hygiene (no
leaked processes, no stray ``/dev/shm`` segments) and the
thread-fallback resolution used everywhere a ``backend=`` knob exists.
"""

from __future__ import annotations

import glob
import io
import logging
import os
import signal
import threading

import pytest

from repro.codecs.block import (
    FLAG_STORED_FALLBACK,
    BlockHeader,
    _compress_payload,
)
from repro.codecs.errors import CodecError, CorruptBlockError
from repro.core import procpool
from repro.core.buffers import SharedSlabPool
from repro.core.levels import default_level_table
from repro.core.pipeline import CodecThreadPool, make_block_encoder
from repro.core.procpool import (
    CodecProcessPool,
    ProcessBackendUnavailable,
    WorkerCrashedError,
    process_backend_available,
    resolve_backend,
)
from repro.data import Compressibility, SyntheticCorpus
from repro.telemetry.events import BUS, CodecBackendFallback

LEVELS = default_level_table()

requires_process_backend = pytest.mark.skipif(
    not process_backend_available(),
    reason="process backend unavailable on this platform",
)


def _segment_gone(name: str) -> bool:
    """True iff the named shared-memory segment no longer exists.

    Checked by name rather than by diffing the whole ``/dev/shm``
    listing so concurrent pools (other tests, benchmarks) cannot make
    the check flaky.  On platforms without a ``/dev/shm`` filesystem
    the check degrades to vacuously true.
    """
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return True
    return not glob.glob(os.path.join("/dev/shm", "*" + name.lstrip("/")))


def _compress_on(pool: CodecProcessPool, data: bytes, codec, **kwargs) -> dict:
    """Run one compress job to completion; {'exc','header','payload'}."""
    done = threading.Event()
    out: dict = {}

    def on_done(exc, header, payload):
        out["exc"] = exc
        out["header"] = header
        out["payload"] = None if payload is None else bytes(payload)
        done.set()

    pool.submit_compress(data, codec, on_done=on_done, **kwargs)
    assert done.wait(30.0), "compress job never completed"
    return out


def _decompress_on(pool: CodecProcessPool, header, payload, **kwargs) -> dict:
    """Run one decompress job to completion; {'exc','data'}."""
    done = threading.Event()
    out: dict = {}

    def on_done(exc, data):
        out["exc"] = exc
        out["data"] = None if data is None else bytes(data)
        done.set()

    pool.submit_decompress(header, payload, on_done=on_done, **kwargs)
    assert done.wait(30.0), "decompress job never completed"
    return out


class TestSharedSlabPool:
    def test_acquire_write_read_release(self):
        with SharedSlabPool(slab_size=1024, num_slabs=2) as pool:
            slab = pool.try_acquire(512)
            assert slab is not None
            assert 0 <= slab.index < 2
            slab.view[:5] = b"hello"
            assert bytes(slab.view[:5]) == b"hello"
            slab.release()
            assert pool.free_slabs == 2
            assert pool.stats()["acquires"] == 1

    def test_release_is_idempotent(self):
        with SharedSlabPool(slab_size=64, num_slabs=1) as pool:
            slab = pool.try_acquire(8)
            slab.release()
            slab.release()
            assert pool.free_slabs == 1

    def test_oversize_request_returns_none(self):
        with SharedSlabPool(slab_size=64, num_slabs=2) as pool:
            assert pool.try_acquire(65) is None
            assert pool.stats()["oversize"] == 1
            assert pool.free_slabs == 2

    def test_exhausted_ring_returns_none(self):
        with SharedSlabPool(slab_size=64, num_slabs=2) as pool:
            slabs = [pool.try_acquire(8), pool.try_acquire(8)]
            assert all(s is not None for s in slabs)
            assert pool.try_acquire(8) is None
            assert pool.stats()["exhausted"] == 1
            for slab in slabs:
                slab.release()
            assert pool.try_acquire(8) is not None

    def test_close_unlinks_segment(self):
        pool = SharedSlabPool(slab_size=64, num_slabs=1)
        name = pool.name
        if os.path.isdir("/dev/shm"):
            assert not _segment_gone(name), "segment never appeared"
        pool.close()
        pool.close()  # idempotent
        assert _segment_gone(name)

    def test_close_with_outstanding_slab(self):
        pool = SharedSlabPool(slab_size=64, num_slabs=2)
        name = pool.name
        slab = pool.try_acquire(16)
        assert slab is not None
        pool.close()
        # The abort path may still release its slab handles afterwards.
        slab.release()
        assert _segment_gone(name)

    def test_closed_pool_refuses_acquire(self):
        pool = SharedSlabPool(slab_size=64, num_slabs=1)
        pool.close()
        assert pool.try_acquire(8) is None


@requires_process_backend
class TestCodecProcessPool:
    @pytest.fixture(scope="class")
    def pool(self):
        with CodecProcessPool(2, name="test-codec-proc") as pool:
            yield pool

    @pytest.fixture(scope="class")
    def corpus(self):
        return SyntheticCorpus(file_size=64 * 1024, seed=37)

    @pytest.mark.parametrize("level", [0, 1, 2, 3])
    def test_compress_matches_serial(self, pool, corpus, level):
        data = corpus.payload(Compressibility.MODERATE)
        codec = LEVELS.codec(level)
        expected_header, expected_payload = _compress_payload(data, codec, True)
        out = _compress_on(pool, data, codec)
        assert out["exc"] is None
        assert out["header"] == expected_header
        assert out["payload"] == bytes(expected_payload)

    def test_stored_fallback_matches_serial(self, pool):
        data = os.urandom(16384)  # never compresses below itself
        codec = LEVELS.codec(1)
        expected_header, expected_payload = _compress_payload(data, codec, True)
        assert expected_header.flags & FLAG_STORED_FALLBACK  # test is live
        out = _compress_on(pool, data, codec)
        assert out["exc"] is None
        assert out["header"] == expected_header
        assert out["payload"] == bytes(expected_payload)

    def test_fallback_disabled_matches_serial(self, pool):
        data = os.urandom(16384)
        codec = LEVELS.codec(1)
        expected_header, expected_payload = _compress_payload(data, codec, False)
        out = _compress_on(pool, data, codec, allow_stored_fallback=False)
        assert out["exc"] is None
        assert out["header"] == expected_header
        assert out["payload"] == bytes(expected_payload)

    @pytest.mark.parametrize("level", [0, 2, 3])
    def test_decompress_roundtrip(self, pool, corpus, level):
        data = corpus.payload(Compressibility.HIGH)
        header, payload = _compress_payload(data, LEVELS.codec(level), True)
        out = _decompress_on(pool, header, bytes(payload), check_crc=True)
        assert out["exc"] is None
        assert out["data"] == data

    def test_oversize_payload_goes_inline(self):
        data = os.urandom(8192)
        codec = LEVELS.codec(2)
        expected_header, expected_payload = _compress_payload(data, codec, True)
        with CodecProcessPool(1, slab_size=1024, num_slabs=2) as small:
            out = _compress_on(small, data, codec)
            assert out["exc"] is None
            assert out["header"] == expected_header
            assert out["payload"] == bytes(expected_payload)
            stats = small.stats()
        assert stats["inline_jobs"] >= 1

    def test_crc_mismatch_surfaces_as_codec_error(self, pool, corpus):
        data = corpus.payload(Compressibility.HIGH)
        header, payload = _compress_payload(data, LEVELS.codec(2), True)
        corrupted = bytearray(payload)
        corrupted[len(corrupted) // 2] ^= 0xFF
        out = _decompress_on(pool, header, bytes(corrupted), check_crc=True)
        assert isinstance(out["exc"], CorruptBlockError)
        # The pool stays serviceable after a job failure.
        ok = _decompress_on(pool, header, bytes(payload), check_crc=True)
        assert ok["exc"] is None and ok["data"] == data
        assert pool.stats()["job_failures"] >= 1

    def test_bad_payload_surfaces_codec_error(self, pool):
        header = BlockHeader(
            codec_id=2, flags=0, uncompressed_len=100, compressed_len=9, crc32=0
        )
        out = _decompress_on(pool, header, b"not-bzip2!", check_crc=False)
        assert isinstance(out["exc"], CodecError)

    def test_stats_shape(self, pool):
        stats = pool.stats()
        assert stats["backend"] == "process"
        assert stats["workers"] == 2
        assert stats["jobs_completed"] <= stats["jobs_submitted"]
        assert "slabs" in stats and "exhausted" in stats["slabs"]

    def test_close_leaves_no_processes_or_segments(self, corpus):
        pool = CodecProcessPool(2)
        name = pool._slabs.name
        data = corpus.payload(Compressibility.MODERATE)
        out = _compress_on(pool, data, LEVELS.codec(2))
        assert out["exc"] is None
        procs = list(pool._procs)
        pool.close()
        pool.close()  # idempotent
        assert all(not p.is_alive() for p in procs)
        assert _segment_gone(name)
        with pytest.raises(RuntimeError):
            pool.submit_compress(b"x", LEVELS.codec(1), on_done=lambda *a: None)

    def test_terminate_leaves_no_segments(self):
        pool = CodecProcessPool(1)
        name = pool._slabs.name
        pool.terminate()
        assert _segment_gone(name)
        assert all(not p.is_alive() for p in pool._procs)


@requires_process_backend
class TestWorkerCrash:
    def test_crash_fails_in_flight_and_breaks_pool(self):
        data = os.urandom(256 * 1024)
        heavy = LEVELS.codec(3)
        results: list = []
        done = threading.Event()
        total = 6

        def on_done(exc, header, payload):
            results.append(exc)
            if len(results) == total:
                done.set()

        pool = CodecProcessPool(1, name="crash-victim")
        name = pool._slabs.name
        try:
            for _ in range(total):
                pool.submit_compress(data, heavy, on_done=on_done)
            os.kill(pool._procs[0].pid, signal.SIGKILL)
            assert done.wait(30.0), "in-flight jobs never completed after crash"
            # At 6 queued HEAVY jobs against one freshly killed worker, at
            # least the tail of the queue must have died in flight.
            crashed = [e for e in results if isinstance(e, WorkerCrashedError)]
            assert crashed, f"no WorkerCrashedError in {results!r}"
            assert pool.broken
            with pytest.raises(WorkerCrashedError):
                pool.submit_compress(data, heavy, on_done=lambda *a: None)
        finally:
            pool.terminate()
        assert _segment_gone(name)


class TestBackendResolution:
    def _force_unavailable(self, reason: str = "forced-by-test"):
        procpool._availability = (False, reason)
        procpool._fallback_warned.clear()

    @pytest.fixture(autouse=True)
    def _restore_probe(self):
        saved = procpool._availability
        yield
        procpool._availability = saved
        procpool._fallback_warned.clear()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("fibers")

    def test_thread_passthrough(self):
        assert resolve_backend("thread") == "thread"

    def test_unavailable_process_resolves_to_thread_with_event(self):
        self._force_unavailable()
        events: list = []
        handle = BUS.subscribe(events.append, CodecBackendFallback)
        try:
            assert resolve_backend("process", source="unit-test") == "thread"
        finally:
            BUS.unsubscribe(handle)
        assert len(events) == 1
        assert events[0].source == "unit-test"
        assert events[0].requested == "process"
        assert events[0].resolved == "thread"
        assert events[0].reason == "forced-by-test"

    def test_fallback_warns_once_per_reason(self, caplog):
        self._force_unavailable()
        with caplog.at_level(logging.WARNING, logger="repro.core.procpool"):
            resolve_backend("process", source="a")
            resolve_backend("process", source="b")
        warnings = [r for r in caplog.records if "falling back" in r.message]
        assert len(warnings) == 1

    def test_pool_ctor_raises_when_unavailable(self):
        self._force_unavailable()
        with pytest.raises(ProcessBackendUnavailable):
            CodecProcessPool(1)

    def test_make_block_encoder_degrades_to_threads(self):
        self._force_unavailable()
        enc = make_block_encoder(io.BytesIO(), workers=2, backend="process")
        try:
            assert isinstance(enc.codec_pool, CodecThreadPool)
            enc.write_block(b"z" * 4096, LEVELS.codec(2))
        finally:
            enc.close()
