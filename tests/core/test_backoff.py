"""Tests for the exponential backoff table."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BackoffTable
from repro.telemetry.events import BUS, BackoffUpdated


class TestBackoffTable:
    def test_initial_thresholds_are_one(self):
        table = BackoffTable(4)
        assert [table.threshold(i) for i in range(4)] == [1, 1, 1, 1]

    def test_reward_doubles_threshold(self):
        table = BackoffTable(4)
        for expected in (2, 4, 8, 16):
            table.reward(2)
            assert table.threshold(2) == expected
        # Other levels untouched.
        assert table.threshold(1) == 1

    def test_punish_resets_to_one(self):
        table = BackoffTable(4)
        for _ in range(5):
            table.reward(1)
        table.punish(1)
        assert table.threshold(1) == 1
        assert table.exponent(1) == 0

    def test_exponent_capped(self):
        table = BackoffTable(2)
        for _ in range(100):
            table.reward(0)
        assert table.exponent(0) == BackoffTable.MAX_EXPONENT
        assert table.threshold(0) == 1 << BackoffTable.MAX_EXPONENT

    def test_saturated_exponent_stays_at_cap(self):
        table = BackoffTable(2)
        for _ in range(BackoffTable.MAX_EXPONENT):
            table.reward(1)
        saturated = table.threshold(1)
        table.reward(1)
        table.reward(1)
        assert table.threshold(1) == saturated
        assert table.exponent(1) == BackoffTable.MAX_EXPONENT

    def test_punish_after_reward_resets_threshold_to_one(self):
        table = BackoffTable(4)
        table.reward(2)
        table.reward(2)
        assert table.threshold(2) == 4
        table.punish(2)
        assert table.threshold(2) == 1
        # And the cycle restarts cleanly from the reset exponent.
        table.reward(2)
        assert table.threshold(2) == 2

    def test_snapshot_is_copy(self):
        table = BackoffTable(3)
        snap = table.snapshot()
        snap[0] = 99
        assert table.exponent(0) == 0

    def test_snapshot_isolated_from_later_mutation(self):
        table = BackoffTable(3)
        snap = table.snapshot()
        table.reward(1)
        assert snap == [0, 0, 0]
        assert table.snapshot() == [0, 1, 0]

    def test_len(self):
        assert len(BackoffTable(5)) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffTable(0)

    def test_reward_and_punish_emit_telemetry(self):
        got = []
        handle = BUS.subscribe(got.append, BackoffUpdated)
        try:
            table = BackoffTable(4)
            table.reward(2)
            table.reward(2)
            table.punish(2)
        finally:
            BUS.unsubscribe(handle)
        assert [(e.action, e.level, e.exponent) for e in got] == [
            ("reward", 2, 1),
            ("reward", 2, 2),
            ("punish", 2, 0),
        ]

    def test_reward_at_cap_emits_saturated_exponent(self):
        table = BackoffTable(2)
        for _ in range(BackoffTable.MAX_EXPONENT):
            table.reward(0)
        got = []
        handle = BUS.subscribe(got.append, BackoffUpdated)
        try:
            table.reward(0)
        finally:
            BUS.unsubscribe(handle)
        assert got[0].exponent == BackoffTable.MAX_EXPONENT

    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["reward", "punish"]), st.integers(0, 3)),
            max_size=200,
        )
    )
    @settings(max_examples=100)
    def test_threshold_always_power_of_two(self, ops):
        table = BackoffTable(4)
        for op, level in ops:
            getattr(table, op)(level)
            t = table.threshold(level)
            assert t >= 1 and (t & (t - 1)) == 0
