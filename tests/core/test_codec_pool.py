"""Tests for the shared CodecThreadPool and pool-sharing pipelines."""

from __future__ import annotations

import io
import threading
import time

import pytest

from repro.codecs.block import BlockReader
from repro.core.levels import default_level_table
from repro.core.pipeline import (
    CodecThreadPool,
    ParallelBlockEncoder,
    make_block_encoder,
)

LEVELS = default_level_table()


def _settle(predicate, deadline: float = 5.0) -> bool:
    end = time.monotonic() + deadline
    while not predicate():
        if time.monotonic() > end:
            return False
        time.sleep(0.01)
    return True


class TestCodecThreadPool:
    def test_runs_submitted_jobs(self):
        hits = []
        with CodecThreadPool(2) as pool:
            done = threading.Event()
            pool.submit(lambda index: (hits.append(index), done.set()))
            assert done.wait(5.0)
        assert len(hits) == 1
        assert 0 <= hits[0] < 2

    def test_worker_indices_are_distinct(self):
        seen = set()
        barrier = threading.Barrier(3)

        def job(index):
            seen.add(index)
            barrier.wait(timeout=5.0)

        with CodecThreadPool(3) as pool:
            for _ in range(3):
                pool.submit(job)
            assert _settle(lambda: len(seen) == 3)
        assert seen == {0, 1, 2}

    def test_close_is_idempotent_and_joins_workers(self):
        before = threading.active_count()
        pool = CodecThreadPool(4)
        assert threading.active_count() == before + 4
        pool.close()
        pool.close()
        assert threading.active_count() == before
        assert pool.closed

    def test_submit_after_close_raises(self):
        pool = CodecThreadPool(1)
        pool.close()
        with pytest.raises(ValueError):
            pool.submit(lambda index: None)

    def test_job_failure_keeps_worker_alive(self):
        with CodecThreadPool(1) as pool:
            pool.submit(lambda index: 1 / 0)
            done = threading.Event()
            pool.submit(lambda index: done.set())
            assert done.wait(5.0)
            stats = pool.stats()
        assert stats["job_failures"] == 1
        assert stats["jobs_completed"] == 2

    def test_stats_counts(self):
        with CodecThreadPool(2) as pool:
            for _ in range(5):
                pool.submit(lambda index: None)
            assert _settle(lambda: pool.stats()["jobs_completed"] == 5)
            assert pool.stats()["jobs_submitted"] == 5
            assert pool.in_flight == 0

    def test_requires_at_least_one_worker(self):
        with pytest.raises(ValueError):
            CodecThreadPool(0)


class TestSharedPoolPipelines:
    """Many encoders on one pool: the serve-subsystem substrate."""

    def _payloads(self):
        return [bytes([i % 251]) * 4096 for i in range(12)]

    def _serial_frames(self, payloads):
        sink = io.BytesIO()
        enc = make_block_encoder(sink, workers=1, source="t")
        for data in payloads:
            enc.write_block(data, LEVELS.codec(2))
        enc.close()
        return sink.getvalue()

    def test_two_encoders_share_one_pool_byte_identical(self):
        payloads = self._payloads()
        expected = self._serial_frames(payloads)
        with CodecThreadPool(3) as pool:
            sinks = [io.BytesIO(), io.BytesIO()]
            encoders = [
                ParallelBlockEncoder(s, codec_pool=pool, max_in_flight=4)
                for s in sinks
            ]
            for data in payloads:
                for enc in encoders:
                    enc.write_block(data, LEVELS.codec(2))
            for enc in encoders:
                enc.close()
            assert pool.stats()["jobs_submitted"] == 2 * len(payloads)
        for sink in sinks:
            assert sink.getvalue() == expected

    def test_encoder_close_does_not_close_shared_pool(self):
        with CodecThreadPool(2) as pool:
            enc = ParallelBlockEncoder(io.BytesIO(), codec_pool=pool, max_in_flight=2)
            enc.write_block(b"x" * 1000, LEVELS.codec(1))
            enc.close()
            assert not pool.closed
            done = threading.Event()
            pool.submit(lambda index: done.set())
            assert done.wait(5.0)

    def test_owned_pool_still_closed_with_encoder(self):
        before = threading.active_count()
        enc = ParallelBlockEncoder(io.BytesIO(), workers=2)
        assert threading.active_count() > before
        enc.close()
        assert _settle(lambda: threading.active_count() == before)

    def test_make_block_encoder_with_codec_pool(self):
        payloads = self._payloads()
        expected = self._serial_frames(payloads)
        with CodecThreadPool(2) as pool:
            sink = io.BytesIO()
            enc = make_block_encoder(sink, workers=2, source="t", codec_pool=pool)
            assert enc.codec_pool is pool
            for data in payloads:
                enc.write_block(data, LEVELS.codec(2))
            enc.close()
        assert sink.getvalue() == expected

    def test_shared_pool_abort_discards_quietly(self):
        with CodecThreadPool(2) as pool:
            enc = ParallelBlockEncoder(io.BytesIO(), codec_pool=pool, max_in_flight=4)
            for _ in range(4):
                enc.write_block(b"y" * 2048, LEVELS.codec(3))
            enc.abort()
            assert not pool.closed
            # Pool must still be serviceable after the abort.
            done = threading.Event()
            pool.submit(lambda index: done.set())
            assert done.wait(5.0)

    def test_shared_pool_frames_decode_back(self):
        payloads = self._payloads()
        with CodecThreadPool(2) as pool:
            sink = io.BytesIO()
            enc = ParallelBlockEncoder(sink, codec_pool=pool, max_in_flight=3)
            for data in payloads:
                enc.write_block(data, LEVELS.codec(3))
            enc.close()
        sink.seek(0)
        assert list(BlockReader(sink)) == payloads
