"""Differential test: the library vs an independent transcription.

`REFERENCE` below is a second, deliberately naive transcription of the
paper's Algorithm 1 and its prose state updates, written without
looking at ``repro.core.decision``.  Hypothesis drives both with random
rate sequences; any divergence means one of the two misread the paper.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DecisionModel


class ReferenceModel:
    """Straight-line re-transcription of Algorithm 1 (+ Table I)."""

    def __init__(self, n_levels: int, alpha: float = 0.2) -> None:
        self.n = n_levels
        self.alpha = alpha
        self.ccl = 0
        self.c = 0
        self.inc = True
        self.bck = [0] * n_levels
        self.pdr = None

    def observe(self, cdr: float) -> int:
        if self.pdr is None:
            self.pdr = cdr
        pdr = self.pdr
        ccl = self.ccl

        # --- Algorithm 1, line by line --------------------------------
        d = cdr - pdr  # 1
        self.c += 1  # 2
        ncl = ccl  # 3
        probe = False
        if abs(d) <= self.alpha * pdr:  # 4
            if self.c >= 2 ** self.bck[ccl]:  # 6
                if self.inc:  # 7
                    ncl = ncl + 1  # 8
                else:
                    ncl = ncl - 1  # 10
                self.c = 0  # 12
                probe = True
        elif d > 0:  # 15
            self.bck[ccl] = min(self.bck[ccl] + 1, 30)  # 16 (+ cap)
            self.c = 0  # 17
        else:  # 19
            self.bck[ccl] = 0  # 20
            if self.inc:  # 21
                ncl = ncl - 1  # 22
            else:
                ncl = ncl + 1  # 24
            self.c = 0  # 26
        # --- boundary policy (documented in repro.core.decision) ------
        if not 0 <= ncl < self.n:
            if probe:
                reflected = ccl - (ncl - ccl)
                ncl = reflected if 0 <= reflected < self.n and reflected != ccl else ccl
            else:
                ncl = min(max(ncl, 0), self.n - 1)
        # --- prose updates ("inc is usually updated outside") ---------
        if ncl > ccl:
            self.inc = True
        elif ncl < ccl:
            self.inc = False
        elif probe:
            # Reflection collapsed: flip the probe direction.
            self.inc = not self.inc
        self.pdr = cdr
        self.ccl = ncl
        return ncl


rate_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=400,
)


class TestAgainstReference:
    @given(rates=rate_lists, n_levels=st.integers(min_value=1, max_value=8))
    @settings(max_examples=300, deadline=None)
    def test_levels_identical(self, rates, n_levels):
        lib = DecisionModel(n_levels)
        ref = ReferenceModel(n_levels)
        for rate in rates:
            assert lib.observe(rate) == ref.observe(rate)

    @given(rates=rate_lists, alpha=st.floats(min_value=0.0, max_value=0.9))
    @settings(max_examples=150, deadline=None)
    def test_state_identical(self, rates, alpha):
        lib = DecisionModel(4, alpha=alpha)
        ref = ReferenceModel(4, alpha=alpha)
        for rate in rates:
            lib.observe(rate)
            ref.observe(rate)
            assert lib.state.ccl == ref.ccl
            assert lib.state.c == ref.c
            assert lib.state.inc == ref.inc
            assert lib.state.bck.snapshot() == ref.bck
            assert lib.state.pdr == ref.pdr
