"""Tests for rate measurement primitives."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EpochSample, RateMeter, RateWindow


class TestEpochSample:
    def test_rate(self):
        s = EpochSample(start=0.0, end=2.0, nbytes=200)
        assert s.duration == 2.0
        assert s.rate == 100.0

    def test_zero_duration_rate_is_zero(self):
        s = EpochSample(start=1.0, end=1.0, nbytes=50)
        assert s.rate == 0.0


class TestRateMeter:
    def test_accumulate_and_close(self):
        meter = RateMeter(clock_start=10.0)
        meter.record(100)
        meter.record(50)
        sample = meter.close_epoch(12.0)
        assert sample.nbytes == 150
        assert sample.start == 10.0
        assert sample.end == 12.0
        assert sample.rate == 75.0

    def test_epoch_reset_after_close(self):
        meter = RateMeter()
        meter.record(100)
        meter.close_epoch(1.0)
        assert meter.pending_bytes == 0
        sample = meter.close_epoch(2.0)
        assert sample.nbytes == 0
        assert sample.start == 1.0

    def test_total_bytes_survives_epochs(self):
        meter = RateMeter()
        meter.record(5)
        meter.close_epoch(1.0)
        meter.record(7)
        assert meter.total_bytes == 12

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            RateMeter().record(-1)

    def test_clock_backwards_rejected(self):
        meter = RateMeter(clock_start=5.0)
        with pytest.raises(ValueError):
            meter.close_epoch(4.0)

    @given(
        chunks=st.lists(st.integers(min_value=0, max_value=10_000), max_size=100),
        duration=st.floats(min_value=0.001, max_value=100.0),
    )
    @settings(max_examples=100)
    def test_rate_equals_sum_over_duration(self, chunks, duration):
        meter = RateMeter()
        for c in chunks:
            meter.record(c)
        sample = meter.close_epoch(duration)
        assert sample.nbytes == sum(chunks)
        assert sample.rate == pytest.approx(sum(chunks) / duration)


class TestRateWindow:
    def test_mean_rate_duration_weighted(self):
        window = RateWindow()
        window.push(EpochSample(0.0, 1.0, 100))  # 100 B/s for 1 s
        window.push(EpochSample(1.0, 4.0, 600))  # 200 B/s for 3 s
        assert window.mean_rate() == pytest.approx(700 / 4)

    def test_empty_window(self):
        window = RateWindow()
        assert window.mean_rate() == 0.0
        assert window.last is None
        assert len(window) == 0

    def test_maxlen_evicts_oldest(self):
        window = RateWindow(maxlen=2)
        for i in range(4):
            window.push(EpochSample(i, i + 1.0, i * 10))
        assert len(window) == 2
        assert window.rates() == [20.0, 30.0]

    def test_last(self):
        window = RateWindow()
        s = EpochSample(0.0, 1.0, 5)
        window.push(s)
        assert window.last == s

    def test_validation(self):
        with pytest.raises(ValueError):
            RateWindow(maxlen=0)
