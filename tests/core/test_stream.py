"""Tests for adaptive and static block-stream writers."""

from __future__ import annotations

import io

import pytest

from repro.codecs import BlockReader
from repro.core import AdaptiveBlockWriter, StaticBlockWriter, default_level_table


class FakeClock:
    """Deterministic, manually advanced clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestAdaptiveBlockWriter:
    def test_roundtrip_small_stream(self):
        buf = io.BytesIO()
        clock = FakeClock()
        writer = AdaptiveBlockWriter(buf, block_size=256, clock=clock)
        payload = b"adaptive stream payload " * 200
        writer.write(payload)
        writer.close()

        buf.seek(0)
        assert b"".join(BlockReader(buf)) == payload

    def test_roundtrip_with_level_changes(self):
        buf = io.BytesIO()
        clock = FakeClock()
        writer = AdaptiveBlockWriter(
            buf, block_size=128, epoch_seconds=1.0, clock=clock
        )
        payload = bytes(range(256)) * 64
        # Write in chunks, advancing time so several epochs close and
        # the level actually moves mid-stream.
        for i in range(0, len(payload), 200):
            writer.write(payload[i : i + 200])
            clock.advance(0.6)
        writer.close()
        levels_seen = {r.level_after for r in writer.controller.trace}
        assert len(levels_seen) > 1  # the level did change mid-stream

        buf.seek(0)
        assert b"".join(BlockReader(buf)) == payload

    def test_partial_block_flushed_on_close(self):
        buf = io.BytesIO()
        writer = AdaptiveBlockWriter(buf, block_size=1000, clock=FakeClock())
        writer.write(b"tiny")
        writer.close()
        buf.seek(0)
        assert b"".join(BlockReader(buf)) == b"tiny"

    def test_write_after_close_rejected(self):
        writer = AdaptiveBlockWriter(io.BytesIO(), clock=FakeClock())
        writer.close()
        with pytest.raises(ValueError):
            writer.write(b"x")

    def test_context_manager(self):
        buf = io.BytesIO()
        with AdaptiveBlockWriter(buf, block_size=64, clock=FakeClock()) as w:
            w.write(b"ctx " * 50)
        buf.seek(0)
        assert b"".join(BlockReader(buf)) == b"ctx " * 50

    def test_statistics(self):
        buf = io.BytesIO()
        writer = AdaptiveBlockWriter(buf, block_size=100, clock=FakeClock())
        writer.write(b"\x00" * 250)
        assert writer.bytes_in == 250
        assert writer.blocks_written == 2  # 50 bytes still buffered
        writer.close()
        assert writer.blocks_written == 3
        assert writer.bytes_out == len(buf.getvalue())

    def test_initial_level_is_no_compression(self):
        writer = AdaptiveBlockWriter(io.BytesIO(), clock=FakeClock())
        assert writer.current_level == 0
        assert writer.current_level_name == "NO"

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            AdaptiveBlockWriter(io.BytesIO(), block_size=0)

    def test_epoch_decisions_follow_clock(self):
        buf = io.BytesIO()
        clock = FakeClock()
        writer = AdaptiveBlockWriter(
            buf, block_size=10, epoch_seconds=2.0, clock=clock
        )
        writer.write(b"x" * 10)  # one block, t=0: no epoch yet
        assert len(writer.controller.trace) == 0
        clock.advance(2.5)
        writer.write(b"y" * 10)  # block at t=2.5 closes the epoch
        assert len(writer.controller.trace) == 1


class TestStaticBlockWriter:
    @pytest.mark.parametrize("level", [0, 1, 2, 3])
    def test_roundtrip_each_level(self, level):
        buf = io.BytesIO()
        payload = b"static level stream " * 300
        with StaticBlockWriter(buf, level, block_size=512) as w:
            w.write(payload)
        buf.seek(0)
        assert b"".join(BlockReader(buf)) == payload

    def test_level_never_changes(self):
        buf = io.BytesIO()
        table = default_level_table()
        writer = StaticBlockWriter(buf, 2, table, block_size=64)
        writer.write(b"m" * 1000)
        writer.close()
        buf.seek(0)
        from repro.codecs.block import decode_header, HEADER_SIZE

        raw = buf.getvalue()
        pos = 0
        codec_ids = set()
        while pos < len(raw):
            header = decode_header(raw[pos : pos + HEADER_SIZE])
            codec_ids.add(header.codec_id)
            pos += HEADER_SIZE + header.compressed_len
        assert codec_ids == {table.codec(2).codec_id}

    def test_level_validation(self):
        with pytest.raises(ValueError):
            StaticBlockWriter(io.BytesIO(), 9)

    def test_write_after_close_rejected(self):
        w = StaticBlockWriter(io.BytesIO(), 0)
        w.close()
        with pytest.raises(ValueError):
            w.write(b"x")

    def test_compression_actually_applied(self):
        compressible = b"\x00" * 10_000
        raw_buf, z_buf = io.BytesIO(), io.BytesIO()
        with StaticBlockWriter(raw_buf, 0, block_size=1024) as w:
            w.write(compressible)
        with StaticBlockWriter(z_buf, 1, block_size=1024) as w:
            w.write(compressible)
        assert len(z_buf.getvalue()) < len(raw_buf.getvalue()) / 5
