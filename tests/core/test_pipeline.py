"""ParallelBlockEncoder: ordering, errors, draining, byte identity."""

from __future__ import annotations

import io
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs import BlockReader, BlockWriter, NullCodec, RleCodec
from repro.codecs.base import Codec, CodecInfo
from repro.codecs.zlib_codec import LightZlibCodec
from repro.core import AdaptiveBlockWriter, StaticBlockWriter
from repro.core.pipeline import ParallelBlockEncoder, make_block_encoder
from repro.telemetry.events import BUS, PipelineQueueDepth, SpanClosed

from ..conftest import all_codecs


@pytest.fixture(autouse=True)
def clean_default_bus():
    """These tests subscribe to the process-wide bus; keep it pristine."""
    BUS.clear()
    yield
    BUS.clear()


class StaggerCodec(Codec):
    """Identity codec that stalls on chosen block contents.

    Compressing any payload starting with ``slow_prefix`` sleeps, so a
    later-submitted block reliably *finishes* first — the adversarial
    schedule for the in-order reassembly guarantee.
    """

    info = CodecInfo(codec_id=0, name="null", description="stalling identity")

    def __init__(self, slow_prefix: bytes, delay: float = 0.05) -> None:
        self._slow_prefix = slow_prefix
        self._delay = delay

    def compress(self, data) -> bytes:
        if bytes(data[: len(self._slow_prefix)]) == self._slow_prefix:
            time.sleep(self._delay)
        return bytes(data)

    def decompress(self, data) -> bytes:
        return bytes(data)


class ExplodingCodec(Codec):
    """Raises on a chosen block; healthy blocks pass through."""

    info = CodecInfo(codec_id=0, name="null", description="exploding identity")

    def __init__(self, poison: bytes) -> None:
        self._poison = poison

    def compress(self, data) -> bytes:
        if bytes(data) == self._poison:
            raise RuntimeError("boom in worker")
        return bytes(data)

    def decompress(self, data) -> bytes:
        return bytes(data)


class GatedCodec(Codec):
    """Blocks every compress until ``release`` is set (backpressure probe)."""

    info = CodecInfo(codec_id=0, name="null", description="gated identity")

    def __init__(self) -> None:
        self.release = threading.Event()
        self.entered = threading.Semaphore(0)

    def compress(self, data) -> bytes:
        self.entered.release()
        assert self.release.wait(timeout=30.0), "gate never opened"
        return bytes(data)

    def decompress(self, data) -> bytes:
        return bytes(data)


def blocks_of(n_blocks: int, size: int = 512) -> list:
    return [bytes([i % 251]) * size for i in range(n_blocks)]


class TestInOrderReassembly:
    def test_slow_first_block_does_not_reorder(self):
        """Block 0 finishes last; the wire stream must still start with it."""
        blocks = blocks_of(8)
        codec = StaggerCodec(slow_prefix=blocks[0][:1])
        sink = io.BytesIO()
        with ParallelBlockEncoder(sink, workers=4) as encoder:
            for block in blocks:
                encoder.write_block(block, codec)
        decoded = list(BlockReader(io.BytesIO(sink.getvalue())))
        assert decoded == blocks

    def test_matches_serial_writer_bytes(self):
        blocks = blocks_of(12, size=300)
        codec = StaggerCodec(slow_prefix=blocks[0][:1], delay=0.02)
        serial_sink = io.BytesIO()
        serial = BlockWriter(serial_sink)
        for block in blocks:
            serial.write_block(block, codec)
        parallel_sink = io.BytesIO()
        with ParallelBlockEncoder(parallel_sink, workers=4) as encoder:
            for block in blocks:
                encoder.write_block(block, codec)
        assert parallel_sink.getvalue() == serial_sink.getvalue()

    def test_counters_match_serial(self):
        blocks = blocks_of(10)
        sink = io.BytesIO()
        encoder = ParallelBlockEncoder(sink, workers=2)
        for block in blocks:
            encoder.write_block(block, NullCodec())
        encoder.close()
        assert encoder.blocks_written == 10
        assert encoder.bytes_in == sum(len(b) for b in blocks)
        assert encoder.bytes_out == len(sink.getvalue())


class TestErrorPropagation:
    def test_worker_exception_reraised_at_call_site(self):
        codec = ExplodingCodec(poison=b"\x01" * 512)
        encoder = ParallelBlockEncoder(io.BytesIO(), workers=2)
        with pytest.raises(RuntimeError, match="boom in worker"):
            for block in blocks_of(64):
                encoder.write_block(block, codec)
            encoder.flush()
        # The latched error surfaces again on close; workers still join.
        with pytest.raises(RuntimeError, match="boom in worker"):
            encoder.close()
        for thread in encoder.codec_pool._threads:
            assert not thread.is_alive()

    def test_close_reraises_and_still_joins_workers(self):
        codec = ExplodingCodec(poison=b"\x00" * 512)
        encoder = ParallelBlockEncoder(io.BytesIO(), workers=2)
        encoder.write_block(b"\x00" * 512, codec)
        with pytest.raises(RuntimeError, match="boom in worker"):
            encoder.close()
        for thread in encoder.codec_pool._threads:
            thread.join(timeout=5.0)
            assert not thread.is_alive()

    def test_error_stops_frame_emission(self):
        """No frames are written past a failed block."""
        blocks = blocks_of(6)
        codec = ExplodingCodec(poison=blocks[2])
        sink = io.BytesIO()
        encoder = ParallelBlockEncoder(sink, workers=1)
        with pytest.raises(RuntimeError):
            for block in blocks:
                encoder.write_block(block, codec)
            encoder.flush()
        with pytest.raises(RuntimeError):
            encoder.close()
        decoded = list(BlockReader(io.BytesIO(sink.getvalue())))
        # Only (a prefix of) the blocks before the poison may have been
        # framed — never anything after it.
        assert decoded == blocks[: len(decoded)]
        assert len(decoded) <= 2


class TestFlushClose:
    def test_flush_drains_all_in_flight(self):
        sink = io.BytesIO()
        encoder = ParallelBlockEncoder(sink, workers=4)
        blocks = blocks_of(7)
        for block in blocks:
            encoder.write_block(block, LightZlibCodec())
        encoder.flush()
        assert encoder.in_flight == 0
        assert encoder.blocks_written == 7
        assert list(BlockReader(io.BytesIO(sink.getvalue()))) == blocks
        encoder.close()

    def test_close_is_idempotent_and_joins(self):
        encoder = ParallelBlockEncoder(io.BytesIO(), workers=3)
        encoder.write_block(b"x" * 100, NullCodec())
        encoder.close()
        encoder.close()
        for thread in encoder.codec_pool._threads:
            assert not thread.is_alive()

    def test_write_after_close_raises(self):
        encoder = ParallelBlockEncoder(io.BytesIO(), workers=2)
        encoder.close()
        with pytest.raises(ValueError, match="closed"):
            encoder.write_block(b"x", NullCodec())

    def test_context_manager_drains(self):
        sink = io.BytesIO()
        with ParallelBlockEncoder(sink, workers=2) as encoder:
            encoder.write_block(b"y" * 2000, LightZlibCodec())
        assert list(BlockReader(io.BytesIO(sink.getvalue()))) == [b"y" * 2000]


class TestBackpressure:
    def test_submission_window_is_bounded(self):
        codec = GatedCodec()
        encoder = ParallelBlockEncoder(io.BytesIO(), workers=2, max_in_flight=3)
        for block in blocks_of(3):
            encoder.write_block(block, codec)
        assert encoder.in_flight == 3

        blocked = threading.Event()

        def submit_fourth():
            encoder.write_block(b"\xff" * 512, codec)
            blocked.set()

        t = threading.Thread(target=submit_fourth, daemon=True)
        t.start()
        # The 4th submission must stall while the window is full...
        assert not blocked.wait(timeout=0.2)
        assert encoder.in_flight == 3
        # ...and proceed once workers drain.
        codec.release.set()
        assert blocked.wait(timeout=10.0)
        t.join(timeout=10.0)
        encoder.close()

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ParallelBlockEncoder(io.BytesIO(), workers=0)
        with pytest.raises(ValueError):
            ParallelBlockEncoder(io.BytesIO(), workers=4, max_in_flight=2)
        with pytest.raises(ValueError):
            make_block_encoder(io.BytesIO(), workers=0)


class TestFactory:
    def test_workers_one_is_plain_serial_writer(self):
        encoder = make_block_encoder(io.BytesIO(), workers=1)
        assert type(encoder) is BlockWriter

    def test_workers_many_is_pipeline(self):
        encoder = make_block_encoder(io.BytesIO(), workers=3)
        assert isinstance(encoder, ParallelBlockEncoder)
        assert encoder.workers == 3
        encoder.close()


class TestByteIdentityProperty:
    @given(
        payload=st.binary(min_size=0, max_size=8192),
        block_size=st.integers(min_value=16, max_value=1024),
    )
    @settings(max_examples=30, deadline=None)
    def test_serial_vs_four_workers_identical_all_codecs(
        self, payload, block_size
    ):
        """Same data, same codec schedule => identical wire bytes,
        including codecs whose output can trigger the stored fallback."""
        for codec in all_codecs():
            streams = []
            for workers in (1, 4):
                sink = io.BytesIO()
                encoder = make_block_encoder(sink, workers=workers)
                for off in range(0, len(payload), block_size):
                    encoder.write_block(payload[off : off + block_size], codec)
                encoder.flush()
                encoder.close()
                streams.append(sink.getvalue())
            assert streams[0] == streams[1], codec.name

    @given(payload=st.binary(min_size=1, max_size=4096))
    @settings(max_examples=30, deadline=None)
    def test_stored_fallback_identical(self, payload):
        """RLE inflates arbitrary data => fallback frames, still identical."""
        streams = []
        for workers in (1, 4):
            sink = io.BytesIO()
            encoder = make_block_encoder(sink, workers=workers)
            encoder.write_block(payload, RleCodec())
            encoder.close()
            streams.append(sink.getvalue())
        assert streams[0] == streams[1]
        assert list(BlockReader(io.BytesIO(streams[0]))) == [payload]


class SteppingClock:
    """Clock advancing a fixed amount per call (deterministic epochs)."""

    def __init__(self, step: float) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestStreamLayerIntegration:
    def test_adaptive_writer_serial_vs_parallel_identical(self):
        payload = bytes(range(256)) * 600
        streams = []
        for workers in (1, 4):
            sink = io.BytesIO()
            writer = AdaptiveBlockWriter(
                sink,
                block_size=1024,
                epoch_seconds=0.25,
                clock=SteppingClock(0.01),
                workers=workers,
            )
            for off in range(0, len(payload), 700):
                writer.write(payload[off : off + 700])
            writer.close()
            streams.append(sink.getvalue())
        assert streams[0] == streams[1]
        assert b"".join(BlockReader(io.BytesIO(streams[0]))) == payload

    def test_static_writer_parallel_roundtrip(self):
        payload = b"static pipeline " * 4000
        sink = io.BytesIO()
        writer = StaticBlockWriter(sink, 2, block_size=2048, workers=4)
        writer.write(payload)
        writer.close()
        assert b"".join(BlockReader(io.BytesIO(sink.getvalue()))) == payload

    def test_stream_counters_with_workers(self):
        payload = b"c" * 10_000
        sink = io.BytesIO()
        writer = StaticBlockWriter(sink, 1, block_size=1024, workers=2)
        writer.write(payload)
        writer.close()
        assert writer.bytes_in == len(payload)
        assert writer.bytes_out == len(sink.getvalue())


class TestPipelineTelemetry:
    def test_queue_depth_events_published(self):
        got = []
        BUS.subscribe(got.append, PipelineQueueDepth)
        with ParallelBlockEncoder(io.BytesIO(), workers=2, source="t") as encoder:
            for block in blocks_of(5):
                encoder.write_block(block, NullCodec())
        assert len(got) == 5
        assert all(e.source == "t" and e.workers == 2 for e in got)
        assert all(0 <= e.depth <= e.in_flight <= 4 for e in got)

    def test_per_worker_compress_spans(self):
        spans = []
        BUS.subscribe(spans.append, SpanClosed)
        with ParallelBlockEncoder(io.BytesIO(), workers=2) as encoder:
            for block in blocks_of(6):
                encoder.write_block(block, LightZlibCodec())
        pipeline_spans = [s for s in spans if s.name == "pipeline.compress"]
        assert len(pipeline_spans) == 6
        workers_seen = {dict(s.tags)["worker"] for s in pipeline_spans}
        assert workers_seen <= {0, 1}
        assert all(dict(s.tags)["codec"] == "zlib-1" for s in pipeline_spans)

    def test_zero_cost_when_idle(self):
        """No subscribers => no events constructed anywhere in the pipeline."""
        BUS.clear()
        before = BUS.published
        with ParallelBlockEncoder(io.BytesIO(), workers=2) as encoder:
            for block in blocks_of(10):
                encoder.write_block(block, LightZlibCodec())
        assert BUS.published == before
