"""ParallelBlockDecoder: ordering, errors, resync composition, identity."""

from __future__ import annotations

import io
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs import (
    HEADER_SIZE,
    BlockReader,
    BlockWriter,
    CodecRegistry,
    CorruptBlockError,
    LightZlibCodec,
    NullCodec,
    encode_block,
)
from repro.codecs.base import Codec, CodecInfo
from repro.core import StaticBlockWriter
from repro.core.buffers import BufferPool
from repro.core.pipeline import ParallelBlockDecoder, make_block_decoder
from repro.core.recovery import ResyncBlockReader
from repro.telemetry.events import (
    BUS,
    BufferPoolStats,
    PipelineQueueDepth,
    SpanClosed,
)

from ..conftest import all_codecs


@pytest.fixture(autouse=True)
def clean_default_bus():
    """These tests subscribe to the process-wide bus; keep it pristine."""
    BUS.clear()
    yield
    BUS.clear()


def make_stream(blocks, codec=None):
    codec = codec or LightZlibCodec()
    sink = io.BytesIO()
    writer = BlockWriter(sink)
    for block in blocks:
        writer.write_block(block, codec)
    return sink.getvalue()


BLOCKS = [bytes([65 + i]) * 3000 + b"tail %d" % i for i in range(8)]


class IdentityCodec(Codec):
    """Identity transform under a private codec id (no stored fallback)."""

    info = CodecInfo(codec_id=7, name="test-identity", description="identity")

    def compress(self, data) -> bytes:
        return bytes(data)

    def decompress(self, data) -> bytes:
        return bytes(data)


class StallingDecodeCodec(IdentityCodec):
    """Identity codec whose *decompress* stalls on chosen payloads.

    Decompressing a payload starting with ``slow_prefix`` sleeps, so a
    later frame reliably finishes first — the adversarial schedule for
    the decoder's in-order reassembly guarantee.
    """

    def __init__(self, slow_prefix: bytes, delay: float = 0.05) -> None:
        self._slow_prefix = slow_prefix
        self._delay = delay

    def decompress(self, data) -> bytes:
        if bytes(data[: len(self._slow_prefix)]) == self._slow_prefix:
            time.sleep(self._delay)
        return bytes(data)


class ExplodingDecodeCodec(IdentityCodec):
    """Raises while decompressing a chosen payload."""

    def __init__(self, poison: bytes) -> None:
        self._poison = poison

    def decompress(self, data) -> bytes:
        if bytes(data) == self._poison:
            raise RuntimeError("boom in decode worker")
        return bytes(data)


class GatedDecodeCodec(IdentityCodec):
    """Blocks every decompress until ``release`` is set (window probe)."""

    def __init__(self) -> None:
        self.release = threading.Event()
        self.entered = threading.Semaphore(0)

    def decompress(self, data) -> bytes:
        self.entered.release()
        assert self.release.wait(timeout=30.0), "gate never opened"
        return bytes(data)


def custom_stream(blocks, codec):
    """Frame ``blocks`` under ``codec``'s own id (fallback disabled) and
    return (wire, registry that resolves that id)."""
    sink = io.BytesIO()
    writer = BlockWriter(sink, allow_stored_fallback=False)
    for block in blocks:
        writer.write_block(block, codec)
    registry = CodecRegistry()
    registry.register(NullCodec())
    registry.register(codec)
    return sink.getvalue(), registry


class TestByteIdentity:
    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("use_pool", [False, True], ids=["no-pool", "pool"])
    def test_identical_to_serial_reader(self, workers, use_pool):
        wire = make_stream(BLOCKS)
        serial = list(BlockReader(io.BytesIO(wire)))
        pool = BufferPool() if use_pool else None
        with ParallelBlockDecoder(
            io.BytesIO(wire), workers=workers, pool=pool
        ) as decoder:
            got = list(decoder)
            assert got == serial == BLOCKS
            assert decoder.blocks_read == len(BLOCKS)
            assert decoder.bytes_out == sum(len(b) for b in BLOCKS)
            assert decoder.bytes_in == len(wire)
            assert decoder.blocks_skipped == 0

    def test_mixed_codec_stream(self):
        """Per-block codec switches (the adaptive scheme's wire) decode
        identically through the pipeline."""
        codecs = all_codecs()
        sink = io.BytesIO()
        writer = BlockWriter(sink)
        for i, block in enumerate(BLOCKS):
            writer.write_block(block, codecs[i % len(codecs)])
        wire = sink.getvalue()
        with ParallelBlockDecoder(io.BytesIO(wire), workers=3) as decoder:
            assert list(decoder) == BLOCKS

    def test_empty_stream(self):
        with ParallelBlockDecoder(io.BytesIO(b""), workers=2) as decoder:
            assert decoder.read_block() is None
            # EOF is sticky.
            assert decoder.read_block() is None
            assert decoder.blocks_read == 0

    def test_single_block(self):
        wire = make_stream([b"only"])
        with ParallelBlockDecoder(io.BytesIO(wire), workers=4) as decoder:
            assert decoder.read_block() == b"only"
            assert decoder.read_block() is None


class TestInOrderReassembly:
    def test_slow_first_block_does_not_reorder(self):
        """Block 0 finishes decompressing last; it must still come out
        first."""
        codec = StallingDecodeCodec(slow_prefix=BLOCKS[0][:1])
        wire, registry = custom_stream(BLOCKS, codec)
        with ParallelBlockDecoder(
            io.BytesIO(wire), registry, workers=4
        ) as decoder:
            assert list(decoder) == BLOCKS


class TestErrorPropagation:
    def test_worker_error_raised_after_good_prefix(self):
        """A failing decompress at block 3 must not poison blocks 0-2."""
        codec = ExplodingDecodeCodec(poison=BLOCKS[3])
        wire, registry = custom_stream(BLOCKS, codec)
        decoder = ParallelBlockDecoder(io.BytesIO(wire), registry, workers=4)
        assert decoder.read_block() == BLOCKS[0]
        assert decoder.read_block() == BLOCKS[1]
        assert decoder.read_block() == BLOCKS[2]
        with pytest.raises(RuntimeError, match="boom in decode worker"):
            decoder.read_block()
        decoder.close()
        self._assert_joined(decoder)

    def test_fetcher_crc_error_in_strict_mode(self):
        """Strict mode: corruption surfaces as the serial reader's
        CorruptBlockError, after the intact prefix."""
        wire = bytearray(make_stream(BLOCKS))
        frame = len(encode_block(BLOCKS[0], LightZlibCodec()).frame)
        wire[2 * frame + HEADER_SIZE + 5] ^= 0xFF
        decoder = ParallelBlockDecoder(io.BytesIO(bytes(wire)), workers=2)
        assert decoder.read_block() == BLOCKS[0]
        assert decoder.read_block() == BLOCKS[1]
        with pytest.raises(CorruptBlockError):
            decoder.read_block()
        decoder.close()
        self._assert_joined(decoder)

    def test_close_after_error_does_not_reraise(self):
        codec = ExplodingDecodeCodec(poison=BLOCKS[0])
        wire, registry = custom_stream(BLOCKS, codec)
        decoder = ParallelBlockDecoder(io.BytesIO(wire), registry, workers=2)
        with pytest.raises(RuntimeError):
            decoder.read_block()
        decoder.close()
        self._assert_joined(decoder)

    def test_abort_tears_down_and_clears_error(self):
        codec = ExplodingDecodeCodec(poison=BLOCKS[0])
        wire, registry = custom_stream(BLOCKS, codec)
        decoder = ParallelBlockDecoder(io.BytesIO(wire), registry, workers=2)
        with pytest.raises(RuntimeError):
            decoder.read_block()
        decoder.abort()
        decoder.abort()
        self._assert_joined(decoder)

    @staticmethod
    def _assert_joined(decoder):
        assert not decoder._fetcher.is_alive()
        for thread in decoder.codec_pool._threads:
            assert not thread.is_alive()


class TestResyncComposition:
    """Satellite: ResyncBlockReader semantics through the pipeline."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_midstream_corruption_skips_one_block(self, workers):
        """One flipped payload byte loses exactly that block; order and
        count of the survivors are unchanged at any worker count."""
        wire = bytearray(make_stream(BLOCKS))
        frame = len(encode_block(BLOCKS[0], LightZlibCodec()).frame)
        wire[2 * frame + HEADER_SIZE + 5] ^= 0xFF
        decoder = make_block_decoder(
            io.BytesIO(bytes(wire)), workers=workers, resync=True
        )
        try:
            got = list(decoder)
            assert got == BLOCKS[:2] + BLOCKS[3:]
            assert decoder.blocks_skipped == 1
            assert decoder.bytes_skipped > 0
        finally:
            decoder.close()

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_serial_resync_reader(self, workers):
        """Block-for-block and skip-for-skip parity with the serial
        ResyncBlockReader on the same damaged wire."""
        wire = bytearray(make_stream(BLOCKS))
        frame = len(encode_block(BLOCKS[0], LightZlibCodec()).frame)
        wire[3 * frame] ^= 0xFF  # kill frame 3's magic
        wire[5 * frame + HEADER_SIZE] ^= 0xFF  # corrupt frame 5's payload
        wire = bytes(wire)

        serial = ResyncBlockReader(io.BytesIO(wire))
        expected = list(serial)
        decoder = make_block_decoder(io.BytesIO(wire), workers=workers, resync=True)
        try:
            assert list(decoder) == expected
            assert decoder.blocks_skipped == serial.blocks_skipped
            assert decoder.bytes_skipped == serial.bytes_skipped
        finally:
            decoder.close()

    def test_clean_stream_has_no_skips(self):
        wire = make_stream(BLOCKS)
        with ParallelBlockDecoder(io.BytesIO(wire), workers=4, resync=True) as d:
            assert list(d) == BLOCKS
            assert d.blocks_skipped == 0
            assert d.bytes_skipped == 0


class TestLifecycle:
    def test_close_is_idempotent_and_joins(self):
        wire = make_stream(BLOCKS)
        decoder = ParallelBlockDecoder(io.BytesIO(wire), workers=3)
        decoder.read_block()
        decoder.close()
        decoder.close()
        assert not decoder._fetcher.is_alive()
        for thread in decoder.codec_pool._threads:
            assert not thread.is_alive()

    def test_close_with_unread_blocks_does_not_hang(self):
        """Teardown discards in-flight work instead of draining it."""
        wire = make_stream([bytes([i % 251]) * 4096 for i in range(64)])
        decoder = ParallelBlockDecoder(io.BytesIO(wire), workers=2)
        assert decoder.read_block() is not None
        decoder.close()
        assert not decoder._fetcher.is_alive()

    def test_context_manager(self):
        wire = make_stream(BLOCKS[:2])
        with ParallelBlockDecoder(io.BytesIO(wire), workers=2) as decoder:
            assert list(decoder) == BLOCKS[:2]
        assert not decoder._fetcher.is_alive()

    def test_read_ahead_window_is_bounded(self):
        """With decompression gated shut, the fetcher must park after
        ``max_in_flight`` frames instead of slurping the stream."""
        codec = GatedDecodeCodec()
        wire, registry = custom_stream(BLOCKS, codec)
        decoder = ParallelBlockDecoder(
            io.BytesIO(wire), registry, workers=2, max_in_flight=2
        )
        try:
            # Both permitted frames reach workers and stall in the gate.
            assert codec.entered.acquire(timeout=10.0)
            assert codec.entered.acquire(timeout=10.0)
            time.sleep(0.1)
            assert decoder._fetched == 2
            codec.release.set()
            assert list(decoder) == BLOCKS
        finally:
            codec.release.set()
            decoder.close()

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ParallelBlockDecoder(io.BytesIO(), workers=0)
        with pytest.raises(ValueError):
            ParallelBlockDecoder(io.BytesIO(), workers=4, max_in_flight=2)
        with pytest.raises(ValueError):
            make_block_decoder(io.BytesIO(), workers=0)


class TestFactory:
    def test_workers_one_is_plain_serial_reader(self):
        decoder = make_block_decoder(io.BytesIO(b""))
        assert type(decoder) is BlockReader

    def test_workers_one_resync_is_serial_resync_reader(self):
        decoder = make_block_decoder(io.BytesIO(b""), resync=True)
        assert type(decoder) is ResyncBlockReader

    def test_workers_many_is_pipeline(self):
        decoder = make_block_decoder(io.BytesIO(b""), workers=3)
        assert isinstance(decoder, ParallelBlockDecoder)
        assert decoder.workers == 3
        decoder.close()


class TestDecoderTelemetry:
    def test_queue_depth_events_published(self):
        got = []
        BUS.subscribe(got.append, PipelineQueueDepth)
        wire = make_stream(BLOCKS)
        with ParallelBlockDecoder(
            io.BytesIO(wire), workers=2, event_source="t"
        ) as decoder:
            list(decoder)
        assert len(got) == len(BLOCKS)
        assert all(e.source == "t" and e.workers == 2 for e in got)

    def test_per_worker_decompress_spans(self):
        spans = []
        BUS.subscribe(spans.append, SpanClosed)
        wire = make_stream(BLOCKS)
        with ParallelBlockDecoder(io.BytesIO(wire), workers=2) as decoder:
            list(decoder)
        decode_spans = [s for s in spans if s.name == "pipeline.decompress"]
        assert len(decode_spans) == len(BLOCKS)
        workers_seen = {dict(s.tags)["worker"] for s in decode_spans}
        assert workers_seen <= {0, 1}
        assert all(dict(s.tags)["codec"] == "zlib-1" for s in decode_spans)

    def test_pool_stats_published_at_close(self):
        got = []
        BUS.subscribe(got.append, BufferPoolStats)
        wire = make_stream(BLOCKS)
        with ParallelBlockDecoder(
            io.BytesIO(wire), workers=2, pool=BufferPool(), event_source="p"
        ) as decoder:
            list(decoder)
        assert len(got) == 1
        stats = got[0]
        assert stats.source == "p"
        assert stats.hits + stats.misses > 0

    def test_zero_cost_when_idle(self):
        """No subscribers => no events constructed anywhere on the
        decode path, pool included."""
        BUS.clear()
        before = BUS.published
        wire = make_stream(BLOCKS)
        with ParallelBlockDecoder(
            io.BytesIO(wire), workers=2, pool=BufferPool()
        ) as decoder:
            list(decoder)
        assert BUS.published == before


class TestByteIdentityProperty:
    """Satellite: serial encode -> parallel decode == serial decode."""

    @given(
        payload=st.binary(min_size=0, max_size=8192),
        block_size=st.integers(min_value=16, max_value=1024),
        workers=st.sampled_from([2, 4]),
    )
    @settings(max_examples=30, deadline=None)
    def test_parallel_decode_identical_all_codecs(
        self, payload, block_size, workers
    ):
        """Any payload and block split, every codec family (stored
        fallback included): the pipeline yields the serial reader's
        exact block sequence."""
        for codec in all_codecs():
            sink = io.BytesIO()
            writer = BlockWriter(sink)
            for off in range(0, len(payload), block_size):
                writer.write_block(payload[off : off + block_size], codec)
            wire = sink.getvalue()
            serial = list(BlockReader(io.BytesIO(wire)))
            with ParallelBlockDecoder(
                io.BytesIO(wire), workers=workers, pool=BufferPool()
            ) as decoder:
                assert list(decoder) == serial, codec.name

    @given(
        chunks=st.lists(st.binary(min_size=0, max_size=700), max_size=8),
        level=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_flush_boundaries_preserved(self, chunks, level):
        """flush() between writes emits partial blocks; the pipeline
        must reproduce the serial reader's sequence across every such
        boundary."""
        sink = io.BytesIO()
        writer = StaticBlockWriter(sink, level, block_size=256)
        for chunk in chunks:
            writer.write(chunk)
            writer.flush()
        writer.close()
        wire = sink.getvalue()
        serial = list(BlockReader(io.BytesIO(wire)))
        with ParallelBlockDecoder(io.BytesIO(wire), workers=3) as decoder:
            got = list(decoder)
        assert got == serial
        assert b"".join(got) == b"".join(chunks)
