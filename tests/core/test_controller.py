"""Tests for the epoch-driven adaptive controller."""

from __future__ import annotations

import pytest

from repro.core import AdaptiveController


class TestAdaptiveController:
    def test_no_decision_within_epoch(self):
        ctl = AdaptiveController(n_levels=4, epoch_seconds=2.0)
        ctl.record(1000)
        assert ctl.poll(1.9) is None
        assert ctl.current_level == 0

    def test_decision_at_epoch_boundary(self):
        ctl = AdaptiveController(n_levels=4, epoch_seconds=2.0)
        ctl.record(1000)
        rec = ctl.poll(2.0)
        assert rec is not None
        assert rec.app_bytes == 1000
        assert rec.app_rate == 500.0
        assert rec.level_before == 0
        assert rec.level_after == 1  # first decision probes up

    def test_epoch_clock_restarts_after_decision(self):
        ctl = AdaptiveController(n_levels=4, epoch_seconds=2.0)
        ctl.record(10)
        assert ctl.poll(2.5) is not None
        ctl.record(10)
        assert ctl.poll(3.0) is None  # only 0.5 s into the new epoch
        assert ctl.poll(4.5) is not None

    def test_overcalling_poll_is_free(self):
        ctl = AdaptiveController(n_levels=4, epoch_seconds=2.0)
        for now in (0.1, 0.2, 0.3):
            assert ctl.poll(now) is None
        assert len(ctl.trace) == 0

    def test_clock_start_offset(self):
        ctl = AdaptiveController(n_levels=4, epoch_seconds=2.0, clock_start=100.0)
        ctl.record(10)
        assert ctl.poll(101.0) is None
        rec = ctl.poll(102.0)
        assert rec is not None
        assert rec.start == 100.0

    def test_force_decision(self):
        ctl = AdaptiveController(n_levels=4, epoch_seconds=60.0)
        ctl.record(100)
        rec = ctl.force_decision(1.0)
        assert rec.app_rate == 100.0

    def test_total_bytes(self):
        ctl = AdaptiveController(n_levels=4)
        ctl.record(5)
        ctl.record(6)
        assert ctl.total_bytes == 11

    def test_trace_accumulates(self):
        ctl = AdaptiveController(n_levels=4, epoch_seconds=1.0)
        for i in range(1, 6):
            ctl.record(100)
            ctl.poll(float(i))
        assert len(ctl.trace) == 5
        assert [r.epoch for r in ctl.trace] == list(range(5))

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveController(n_levels=4, epoch_seconds=0)

    def test_level_timeline(self):
        ctl = AdaptiveController(n_levels=4, epoch_seconds=1.0)
        # Flat rate: level probes away and reverts per the algorithm.
        for i in range(1, 8):
            ctl.record(100)
            ctl.poll(float(i))
        timeline = ctl.level_timeline()
        assert timeline[0] == (0.0, 0)
        # Timeline times must be non-decreasing.
        times = [t for t, _ in timeline]
        assert times == sorted(times)
        # Every level in range.
        assert all(0 <= lvl < 4 for _, lvl in timeline)
