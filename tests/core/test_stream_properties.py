"""Property-based tests for the adaptive block-stream layer."""

from __future__ import annotations

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs import BlockReader
from repro.core import AdaptiveBlockWriter, StaticBlockWriter


class SteppingClock:
    """Clock advancing a fixed amount per call (deterministic epochs)."""

    def __init__(self, step: float) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


@st.composite
def chunked_payload(draw):
    """A payload split into arbitrary chunks."""
    chunks = draw(
        st.lists(
            st.binary(min_size=0, max_size=700),
            min_size=0,
            max_size=20,
        )
    )
    return chunks


class TestAdaptiveStreamProperties:
    @given(
        chunks=chunked_payload(),
        block_size=st.integers(min_value=16, max_value=2048),
        clock_step=st.floats(min_value=0.001, max_value=0.2),
        epoch_seconds=st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=120, deadline=None)
    def test_roundtrip_any_chunking_and_timing(
        self, chunks, block_size, clock_step, epoch_seconds
    ):
        """Whatever the chunking, block size and epoch timing (and thus
        whatever level changes happen mid-stream), the reader restores
        the exact byte stream."""
        payload = b"".join(chunks)
        sink = io.BytesIO()
        writer = AdaptiveBlockWriter(
            sink,
            block_size=block_size,
            epoch_seconds=epoch_seconds,
            clock=SteppingClock(clock_step),
        )
        for chunk in chunks:
            writer.write(chunk)
        writer.close()

        sink.seek(0)
        assert b"".join(BlockReader(sink)) == payload

    @given(
        chunks=chunked_payload(),
        block_size=st.integers(min_value=16, max_value=2048),
    )
    @settings(max_examples=80, deadline=None)
    def test_bytes_in_accounting_exact(self, chunks, block_size):
        payload = b"".join(chunks)
        writer = AdaptiveBlockWriter(
            io.BytesIO(), block_size=block_size, clock=SteppingClock(0.01)
        )
        for chunk in chunks:
            writer.write(chunk)
        writer.close()
        assert writer.bytes_in == len(payload)

    @given(
        chunks=chunked_payload(),
        level=st.integers(min_value=0, max_value=3),
        block_size=st.integers(min_value=16, max_value=2048),
    )
    @settings(max_examples=80, deadline=None)
    def test_static_writer_roundtrip(self, chunks, level, block_size):
        payload = b"".join(chunks)
        sink = io.BytesIO()
        writer = StaticBlockWriter(sink, level, block_size=block_size)
        for chunk in chunks:
            writer.write(chunk)
        writer.close()
        sink.seek(0)
        assert b"".join(BlockReader(sink)) == payload

    @given(chunks=chunked_payload())
    @settings(max_examples=60, deadline=None)
    def test_wire_overhead_bounded(self, chunks):
        """With the stored fallback, the framed stream never exceeds
        the payload by more than one header per block."""
        payload = b"".join(chunks)
        sink = io.BytesIO()
        writer = AdaptiveBlockWriter(
            sink, block_size=256, clock=SteppingClock(0.05), epoch_seconds=0.1
        )
        for chunk in chunks:
            writer.write(chunk)
        writer.close()
        from repro.codecs import HEADER_SIZE

        max_total = len(payload) + HEADER_SIZE * max(1, writer.blocks_written)
        assert writer.bytes_out <= max_total
