"""Tests for Algorithm 1 and the DecisionModel wrapper.

These tests pin down every branch of the paper's pseudo code plus the
prose semantics around it (inc maintenance, pdr shifting, backoff) and
our documented boundary policy.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DecisionModel, DecisionState, get_next_compression_level
from repro.core.decision import DEFAULT_ALPHA


def fresh_state(n=4, **kw):
    return DecisionState(n_levels=n, **kw)


class TestAlgorithmBranches:
    """Direct pin-down of Algorithm 1's three cases."""

    def test_case1_stable_within_backoff_keeps_level(self):
        state = fresh_state()
        state.bck.reward(0)  # threshold(0) = 2
        ncl = get_next_compression_level(100.0, 100.0, 0, state)
        assert ncl == 0  # c=1 < 2: no probe yet
        assert state.c == 1

    def test_case1_backoff_expired_probes_up_when_inc(self):
        state = fresh_state()
        state.inc = True
        ncl = get_next_compression_level(100.0, 100.0, 1, state)
        assert ncl == 2  # threshold is 2**0 = 1, c reaches 1 -> probe
        assert state.c == 0

    def test_case1_backoff_expired_probes_down_when_not_inc(self):
        state = fresh_state()
        state.inc = False
        ncl = get_next_compression_level(100.0, 100.0, 2, state)
        assert ncl == 1

    def test_case2_improvement_rewards_backoff(self):
        state = fresh_state()
        ncl = get_next_compression_level(200.0, 100.0, 1, state)
        assert ncl == 1  # level kept
        assert state.bck.exponent(1) == 1
        assert state.c == 0

    def test_case3_degradation_reverts_increase(self):
        state = fresh_state()
        state.inc = True
        ncl = get_next_compression_level(50.0, 100.0, 2, state)
        assert ncl == 1  # revert the increase
        assert state.bck.exponent(2) == 0
        assert state.c == 0

    def test_case3_degradation_reverts_decrease(self):
        state = fresh_state()
        state.inc = False
        ncl = get_next_compression_level(50.0, 100.0, 1, state)
        assert ncl == 2  # revert the decrease

    def test_case3_resets_backoff_of_degraded_level(self):
        state = fresh_state()
        for _ in range(3):
            state.bck.reward(1)
        get_next_compression_level(10.0, 100.0, 1, state)
        assert state.bck.exponent(1) == 0

    def test_alpha_deadband_boundaries(self):
        # |d| exactly == alpha * pdr counts as "no change" (<=).
        state = fresh_state()
        ncl = get_next_compression_level(120.0, 100.0, 1, state, alpha=0.2)
        assert ncl == 2  # probe fired (stable branch + expired backoff)
        state = fresh_state()
        ncl = get_next_compression_level(120.1, 100.0, 1, state, alpha=0.2)
        assert ncl == 1  # just outside: improvement branch, keep level

    def test_zero_pdr_improvement(self):
        state = fresh_state()
        ncl = get_next_compression_level(10.0, 0.0, 0, state)
        assert ncl == 0  # improvement: stay, reward
        assert state.bck.exponent(0) == 1

    def test_zero_rate_stable_at_zero(self):
        state = fresh_state()
        ncl = get_next_compression_level(0.0, 0.0, 0, state)
        assert ncl == 1  # |0| <= alpha*0, backoff expired -> probe


class TestDecisionModelWrapper:
    def test_initial_call_probes_immediately(self):
        m = DecisionModel(4)
        # pdr := cdr on first call -> stable branch -> probe up.
        assert m.observe(100.0) == 1
        assert m.state.inc is True

    def test_inc_updated_from_transition(self):
        m = DecisionModel(4)
        m.observe(100.0)  # 0 -> 1 probe, inc=True
        # Degradation at level 1 reverts to 0 and flips inc.
        assert m.observe(10.0) == 0
        assert m.state.inc is False

    def test_pdr_shifts_each_epoch(self):
        m = DecisionModel(4)
        m.observe(100.0)
        assert m.state.pdr == 100.0
        m.observe(150.0)
        assert m.state.pdr == 150.0

    def test_negative_rate_rejected(self):
        m = DecisionModel(4)
        with pytest.raises(ValueError):
            m.observe(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DecisionModel(0)
        with pytest.raises(ValueError):
            DecisionModel(4, alpha=-0.1)
        with pytest.raises(ValueError):
            DecisionState(n_levels=4, ccl=7)

    def test_history_recorded(self):
        m = DecisionModel(4)
        m.observe(100.0)
        m.observe(100.0)
        assert len(m.history) == 2
        assert m.history[0].previous_level == 0
        assert m.history[0].next_level == 1
        assert m.history[0].epoch == 0
        assert m.history[1].epoch == 1


class TestBoundaryPolicy:
    def test_probe_at_top_reflects_down(self):
        m = DecisionModel(4, initial_level=3)
        m.state.inc = True
        lvl = m.observe(100.0)  # first call -> stable -> probe up -> reflect
        assert lvl == 2
        assert m.state.inc is False

    def test_probe_at_bottom_reflects_up(self):
        m = DecisionModel(4, initial_level=0)
        m.state.inc = False
        lvl = m.observe(100.0)
        assert lvl == 1
        assert m.state.inc is True

    def test_revert_clamped_at_bottom(self):
        m = DecisionModel(4, initial_level=0)
        m.state.inc = True
        m.state.pdr = 100.0
        lvl = m.observe(10.0)  # degradation, revert 0 -> -1 clamps to 0
        assert lvl == 0

    def test_revert_clamped_at_top(self):
        m = DecisionModel(4, initial_level=3)
        m.state.inc = False
        m.state.pdr = 100.0
        lvl = m.observe(10.0)  # revert 3 -> 4 clamps to 3
        assert lvl == 3

    def test_single_level_table_never_moves(self):
        m = DecisionModel(1)
        for rate in (100.0, 100.0, 10.0, 200.0, 100.0):
            assert m.observe(rate) == 0

    def test_two_level_table_oscillates_probes(self):
        m = DecisionModel(2)
        levels = [m.observe(100.0) for _ in range(6)]
        # Stable rate, backoff never grows: probe flips between levels.
        assert set(levels) <= {0, 1}
        assert 1 in levels and 0 in levels


class TestConvergenceScenarios:
    """End-to-end behaviour of the model against synthetic rate landscapes."""

    @staticmethod
    def run(model: DecisionModel, rates: dict[int, float], epochs: int) -> list[int]:
        seq = []
        lvl = model.current_level
        for _ in range(epochs):
            lvl = model.observe(rates[lvl])
            seq.append(lvl)
        return seq

    def test_converges_to_best_level(self):
        # Level 1 gives the best application rate (paper Fig. 4 shape).
        rates = {0: 90.0, 1: 200.0, 2: 147.0, 3: 27.0}
        m = DecisionModel(4)
        seq = self.run(m, rates, 100)
        # The dominant level in the long run must be 1.
        assert seq.count(1) > 80
        assert seq[-1] == 1

    def test_probing_becomes_exponentially_rarer(self):
        rates = {0: 90.0, 1: 200.0, 2: 147.0, 3: 27.0}
        m = DecisionModel(4)
        seq = self.run(m, rates, 200)
        departures = [i for i in range(1, len(seq)) if seq[i] != 1 and seq[i - 1] == 1]
        gaps = [b - a for a, b in zip(departures, departures[1:])]
        # Gaps between probes must grow (roughly double).
        assert all(b >= a for a, b in zip(gaps, gaps[1:]))
        assert gaps[-1] >= 4 * gaps[0]

    def test_wrong_decision_reverted_within_one_epoch(self):
        """'it can always react to degradations ... immediately (i.e.
        after t seconds) and revert the wrong decision' (Section III-A)."""
        rates = {0: 100.0, 1: 100.0, 2: 5.0, 3: 1.0}
        m = DecisionModel(4)
        seq = self.run(m, rates, 100)
        # Whenever level 2 was entered, the very next epoch must leave it.
        for i, lvl in enumerate(seq[:-1]):
            if lvl == 2:
                assert seq[i + 1] != 2

    def test_heavy_wins_when_bandwidth_tiny(self):
        # Very slow link: HEAVY's ratio advantage dominates.
        rates = {0: 1.0, 1: 5.0, 2: 6.0, 3: 10.0}
        m = DecisionModel(4)
        seq = self.run(m, rates, 120)
        assert seq.count(3) > 60
        assert seq[-1] == 3

    def test_no_compression_wins_on_incompressible_fast_link(self):
        rates = {0: 100.0, 1: 74.0, 2: 47.0, 3: 6.0}
        m = DecisionModel(4)
        seq = self.run(m, rates, 100)
        assert seq.count(0) > 60


class TestDecisionProperties:
    @given(
        rates=st.lists(
            st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
            min_size=1,
            max_size=300,
        ),
        n_levels=st.integers(min_value=1, max_value=8),
        alpha=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_level_always_valid(self, rates, n_levels, alpha):
        m = DecisionModel(n_levels, alpha=alpha)
        for r in rates:
            lvl = m.observe(r)
            assert 0 <= lvl < n_levels

    @given(
        rates=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_level_moves_at_most_one_step(self, rates):
        m = DecisionModel(4)
        prev = m.current_level
        for r in rates:
            lvl = m.observe(r)
            assert abs(lvl - prev) <= 1
            prev = lvl

    @given(
        rates=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_backoff_exponents_nonnegative(self, rates):
        m = DecisionModel(4)
        for r in rates:
            m.observe(r)
            assert all(b >= 0 for b in m.state.bck.snapshot())

    @given(seed_rate=st.floats(min_value=1.0, max_value=1e6))
    @settings(max_examples=30, deadline=None)
    def test_constant_rate_grows_no_backoff(self, seed_rate):
        """A perfectly flat rate keeps bck at zero: every epoch's probe
        departs and (on the probed level's first epoch) the dead band
        decides what happens next — but no 'improvement' is ever seen
        at the same level twice in a row with a flat landscape."""
        m = DecisionModel(4)
        for _ in range(50):
            m.observe(seed_rate)
        assert all(b == 0 for b in m.state.bck.snapshot())
