"""BufferPool: slab reuse, oversize handling, counters, thread safety."""

from __future__ import annotations

import threading

import pytest

from repro.core.buffers import DEFAULT_SLAB_SIZE, BufferPool, PooledBuffer


class TestAcquireRelease:
    def test_view_is_exact_length_and_writable(self):
        pool = BufferPool(slab_size=1024)
        buf = pool.acquire(100)
        assert len(buf) == 100
        assert buf.view.nbytes == 100
        buf.view[:] = b"x" * 100
        assert bytes(buf.view) == b"x" * 100
        buf.release()

    def test_release_recycles_slab(self):
        pool = BufferPool(slab_size=1024)
        first = pool.acquire(10)
        first.release()
        assert pool.free_slabs == 1
        second = pool.acquire(900)
        assert pool.misses == 1
        assert pool.hits == 1
        assert pool.free_slabs == 0
        second.release()

    def test_release_is_idempotent(self):
        pool = BufferPool(slab_size=64)
        buf = pool.acquire(8)
        buf.release()
        buf.release()
        assert pool.free_slabs == 1

    def test_released_view_is_invalidated(self):
        pool = BufferPool(slab_size=64)
        buf = pool.acquire(8)
        buf.release()
        assert buf.view is None

    def test_distinct_buffers_do_not_share_a_slab(self):
        pool = BufferPool(slab_size=64)
        a = pool.acquire(16)
        b = pool.acquire(16)
        a.view[:] = b"a" * 16
        b.view[:] = b"b" * 16
        assert bytes(a.view) == b"a" * 16
        a.release()
        b.release()


class TestOversize:
    def test_oversize_served_without_pooling(self):
        pool = BufferPool(slab_size=100)
        big = pool.acquire(1000)
        assert len(big) == 1000
        assert pool.oversize == 1
        big.release()
        # One-off allocations never join the free list.
        assert pool.free_slabs == 0
        assert pool.misses == 0

    def test_exact_slab_size_is_pooled(self):
        pool = BufferPool(slab_size=100)
        buf = pool.acquire(100)
        buf.release()
        assert pool.oversize == 0
        assert pool.free_slabs == 1


class TestLimits:
    def test_max_slabs_caps_the_free_list(self):
        pool = BufferPool(slab_size=32, max_slabs=2)
        bufs = [pool.acquire(8) for _ in range(5)]
        for buf in bufs:
            buf.release()
        assert pool.free_slabs == 2
        assert pool.misses == 5

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            BufferPool(slab_size=0)
        with pytest.raises(ValueError):
            BufferPool(max_slabs=0)

    def test_default_slab_fits_a_block_plus_overhead(self):
        assert DEFAULT_SLAB_SIZE >= 128 * 1024


class TestStats:
    def test_stats_snapshot(self):
        pool = BufferPool(slab_size=64)
        pool.acquire(8).release()
        hit = pool.acquire(8)
        pool.acquire(1000).release()
        assert pool.stats() == {
            "hits": 1,
            "misses": 1,
            "oversize": 1,
            "free_slabs": 0,
        }
        hit.release()
        assert pool.stats()["free_slabs"] == 1


class TestThreadSafety:
    def test_concurrent_acquire_release(self):
        pool = BufferPool(slab_size=256, max_slabs=8)
        errors = []

        def churn():
            try:
                for i in range(200):
                    buf = pool.acquire(64)
                    buf.view[:] = bytes([i % 251]) * 64
                    assert bytes(buf.view) == bytes([i % 251]) * 64
                    buf.release()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=churn) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not errors
        assert pool.hits + pool.misses == 800
        assert pool.free_slabs <= 8

    def test_unpooled_buffer_release(self):
        buf = PooledBuffer(bytearray(10), 10, None)
        buf.release()
        buf.release()
