"""Tests for compression level tables."""

from __future__ import annotations

import pytest

from repro.codecs import LightZlibCodec, LzmaCodec, NullCodec
from repro.core import (
    PAPER_LEVEL_NAMES,
    CompressionLevel,
    CompressionLevelTable,
    default_level_table,
)


class TestDefaultTable:
    def test_paper_ladder(self):
        table = default_level_table()
        assert table.names == PAPER_LEVEL_NAMES == ("NO", "LIGHT", "MEDIUM", "HEAVY")
        assert len(table) == 4
        assert table.codec(0).codec_id == 0

    def test_levels_ordered_by_time_ratio(self, moderate_payload):
        """'The individual compression levels must be ordered by their
        respective time/compression ratio' — verify the shipped ladder
        compresses monotonically better with level on prose data."""
        table = default_level_table()
        sizes = [len(table.codec(i).compress(moderate_payload)) for i in range(4)]
        assert sizes[0] > sizes[1] > sizes[2] > sizes[3]

    def test_index_of(self):
        table = default_level_table()
        assert table.index_of("HEAVY") == 3
        with pytest.raises(KeyError):
            table.index_of("ULTRA")

    def test_iteration_and_getitem(self):
        table = default_level_table()
        levels = list(table)
        assert [lvl.index for lvl in levels] == [0, 1, 2, 3]
        assert table[2].name == "MEDIUM"


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompressionLevelTable([])

    def test_level_zero_must_be_null(self):
        with pytest.raises(ValueError, match="null codec"):
            CompressionLevelTable.from_codecs([LightZlibCodec()])

    def test_non_contiguous_indices_rejected(self):
        levels = [
            CompressionLevel(0, "NO", NullCodec()),
            CompressionLevel(2, "X", LightZlibCodec()),
        ]
        with pytest.raises(ValueError, match="contiguous"):
            CompressionLevelTable(levels)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            CompressionLevelTable.from_codecs(
                [NullCodec(), LightZlibCodec(), LzmaCodec()],
                names=["A", "B", "B"],
            )

    def test_names_length_mismatch(self):
        with pytest.raises(ValueError):
            CompressionLevelTable.from_codecs([NullCodec()], names=["A", "B"])


class TestCustomLadders:
    def test_longer_ladder(self):
        """Section III-A allows any n; build a 5-level ladder."""
        table = CompressionLevelTable.from_codecs(
            [NullCodec(), LightZlibCodec(), LzmaCodec(0), LzmaCodec(2), LzmaCodec(6)],
            names=["NO", "FAST", "L0", "L2", "L6"],
        )
        assert len(table) == 5
        assert table.codec(4).name == "lzma-6"
