"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.codecs import (
    Bz2Codec,
    LightZlibCodec,
    LzmaCodec,
    MediumZlibCodec,
    NullCodec,
    RleCodec,
)
from repro.data import Compressibility, SyntheticCorpus


@pytest.fixture(scope="session")
def corpus() -> SyntheticCorpus:
    """One shared synthetic corpus (generation is not free)."""
    return SyntheticCorpus(file_size=64 * 1024, seed=7)


@pytest.fixture(scope="session")
def high_payload(corpus) -> bytes:
    return corpus.payload(Compressibility.HIGH)


@pytest.fixture(scope="session")
def moderate_payload(corpus) -> bytes:
    return corpus.payload(Compressibility.MODERATE)


@pytest.fixture(scope="session")
def low_payload(corpus) -> bytes:
    return corpus.payload(Compressibility.LOW)


def all_codecs():
    """Every codec family at one representative setting."""
    return [
        NullCodec(),
        LightZlibCodec(),
        MediumZlibCodec(),
        LzmaCodec(preset=0),
        Bz2Codec(level=1),
        RleCodec(),
    ]


@pytest.fixture(params=all_codecs(), ids=lambda c: c.name)
def codec(request):
    return request.param
