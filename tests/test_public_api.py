"""Public-surface tests: exports resolve, public items are documented."""

from __future__ import annotations

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.codecs",
    "repro.core",
    "repro.data",
    "repro.schemes",
    "repro.sim",
    "repro.nephele",
    "repro.io",
    "repro.serve",
    "repro.telemetry",
    "repro.experiments",
]


@pytest.mark.parametrize("package", PACKAGES)
class TestExports:
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        exported = getattr(module, "__all__", [])
        for name in exported:
            assert hasattr(module, name), f"{package}.__all__ lists missing {name!r}"

    def test_no_duplicate_exports(self, package):
        module = importlib.import_module(package)
        exported = getattr(module, "__all__", [])
        assert len(exported) == len(set(exported))

    def test_module_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and module.__doc__.strip()


@pytest.mark.parametrize("package", PACKAGES)
def test_public_classes_and_functions_documented(package):
    """Every class/function a package exports carries a docstring."""
    module = importlib.import_module(package)
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, f"{package}: undocumented public items {undocumented}"


def test_version_string():
    import repro

    assert repro.__version__
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)


def test_experiment_registry_complete():
    """Every experiment module's runner is reachable from the CLI map."""
    from repro.experiments.runner import EXPERIMENTS, PAPER_SET

    assert set(PAPER_SET) == {
        "fig1",
        "fig2",
        "fig3",
        "table2",
        "fig4",
        "fig5",
        "fig6",
    }
    for exp_id, fn in EXPERIMENTS.items():
        assert callable(fn), exp_id
        assert "scale" in inspect.signature(fn).parameters, exp_id
