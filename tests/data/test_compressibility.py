"""Tests for compressibility estimation helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs import LightZlibCodec, NullCodec
from repro.data import mean_measured_ratio, measured_ratio, shannon_entropy


class TestShannonEntropy:
    def test_empty(self):
        assert shannon_entropy(b"") == 0.0

    def test_constant_bytes_zero_entropy(self):
        assert shannon_entropy(b"\x00" * 1000) == 0.0

    def test_uniform_bytes_max_entropy(self):
        data = bytes(range(256)) * 10
        assert shannon_entropy(data) == pytest.approx(8.0)

    def test_two_symbols_one_bit(self):
        assert shannon_entropy(b"ab" * 500) == pytest.approx(1.0)

    @given(data=st.binary(min_size=1, max_size=2000))
    @settings(max_examples=100)
    def test_bounds(self, data):
        e = shannon_entropy(data)
        assert 0.0 <= e <= 8.0 + 1e-9

    @given(data=st.binary(min_size=1, max_size=500))
    @settings(max_examples=60)
    def test_permutation_invariant(self, data):
        assert shannon_entropy(data) == pytest.approx(
            shannon_entropy(bytes(sorted(data)))
        )


class TestMeasuredRatio:
    def test_null_codec_is_one(self):
        assert measured_ratio(b"abc" * 100, NullCodec()) == 1.0

    def test_empty_is_one(self):
        assert measured_ratio(b"", LightZlibCodec()) == 1.0

    def test_compressible_below_one(self):
        assert measured_ratio(b"\x00" * 10_000, LightZlibCodec()) < 0.05

    def test_mean_ratio_size_weighted(self):
        # One compressible and one incompressible chunk; the big chunk
        # must dominate the weighted mean.
        import os

        small_zeros = b"\x00" * 100
        big_noise = os.urandom(100_000)
        mean = mean_measured_ratio([small_zeros, big_noise], LightZlibCodec())
        assert mean > 0.9

    def test_mean_ratio_empty_iterable(self):
        assert mean_measured_ratio([], LightZlibCodec()) == 1.0
