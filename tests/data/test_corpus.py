"""Tests for the synthetic corpus generators.

The load-bearing assertions are the compressibility bands: the paper's
evaluation is meaningful only if HIGH/MODERATE/LOW actually land where
ptt5 / alice29.txt / image.jpg landed (Section IV-A).
"""

from __future__ import annotations

import pytest

from repro.codecs import LightZlibCodec, LzmaCodec, MediumZlibCodec
from repro.data import (
    Compressibility,
    SyntheticCorpus,
    generate,
    measured_ratio,
    shannon_entropy,
)

SIZE = 128 * 1024


@pytest.fixture(scope="module")
def payloads():
    return {c: generate(c, SIZE, seed=3) for c in Compressibility}


class TestDeterminism:
    @pytest.mark.parametrize("compressibility", list(Compressibility))
    def test_same_seed_same_bytes(self, compressibility):
        a = generate(compressibility, 4096, seed=11)
        b = generate(compressibility, 4096, seed=11)
        assert a == b

    @pytest.mark.parametrize("compressibility", list(Compressibility))
    def test_different_seed_different_bytes(self, compressibility):
        a = generate(compressibility, 4096, seed=1)
        b = generate(compressibility, 4096, seed=2)
        assert a != b

    @pytest.mark.parametrize("compressibility", list(Compressibility))
    def test_exact_length(self, compressibility):
        for n in (0, 1, 100, 4097):
            assert len(generate(compressibility, n, seed=0)) == n

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            generate(Compressibility.HIGH, -1)


class TestCompressibilityBands:
    """Paper's bands: HIGH 10-15 %, MODERATE 30-50 %, LOW 90-95 %.

    We allow slightly wider tolerances because the bands themselves were
    quoted loosely ("common compression libraries").
    """

    def test_high_band(self, payloads):
        ratio = measured_ratio(payloads[Compressibility.HIGH], LightZlibCodec())
        assert 0.05 <= ratio <= 0.20

    def test_moderate_band(self, payloads):
        ratio = measured_ratio(payloads[Compressibility.MODERATE], LightZlibCodec())
        assert 0.30 <= ratio <= 0.55

    def test_low_band(self, payloads):
        ratio = measured_ratio(payloads[Compressibility.LOW], LightZlibCodec())
        assert 0.85 <= ratio <= 1.0

    def test_classes_strictly_ordered(self, payloads):
        ratios = {
            c: measured_ratio(payloads[c], MediumZlibCodec()) for c in Compressibility
        }
        assert (
            ratios[Compressibility.HIGH]
            < ratios[Compressibility.MODERATE]
            < ratios[Compressibility.LOW]
        )

    def test_heavy_codec_improves_ratio_on_compressible(self, payloads):
        """LZMA must out-compress fast zlib where there is redundancy."""
        for c in (Compressibility.HIGH, Compressibility.MODERATE):
            light = measured_ratio(payloads[c], LightZlibCodec())
            heavy = measured_ratio(payloads[c], LzmaCodec(preset=2))
            assert heavy < light


class TestEntropy:
    def test_entropy_ordering(self, payloads):
        e = {c: shannon_entropy(payloads[c]) for c in Compressibility}
        assert e[Compressibility.HIGH] < e[Compressibility.MODERATE] < e[Compressibility.LOW]

    def test_low_payload_near_max_entropy(self, payloads):
        assert shannon_entropy(payloads[Compressibility.LOW]) > 7.5

    def test_moderate_is_ascii_text(self, payloads):
        text = payloads[Compressibility.MODERATE]
        assert all(b < 128 for b in text)
        assert b"\n" in text


class TestWriteCorpusFiles:
    def test_writes_all_three_classes(self, tmp_path):
        from repro.data import write_corpus_files

        paths = write_corpus_files(str(tmp_path), file_size=4096, seed=2)
        assert set(paths) == set(Compressibility)
        for compressibility, path in paths.items():
            with open(path, "rb") as fp:
                data = fp.read()
            assert len(data) == 4096
            assert data == generate(compressibility, 4096, seed=2)

    def test_creates_directory(self, tmp_path):
        from repro.data import write_corpus_files

        target = tmp_path / "nested" / "dir"
        paths = write_corpus_files(str(target), file_size=128)
        assert all(str(target) in p for p in paths.values())


class TestSyntheticCorpus:
    def test_payload_cached(self):
        corpus = SyntheticCorpus(file_size=1024, seed=0)
        a = corpus.payload(Compressibility.HIGH)
        b = corpus.payload(Compressibility.HIGH)
        assert a is b

    def test_iterates_all_classes(self):
        assert set(SyntheticCorpus()) == set(Compressibility)

    def test_file_size_respected(self):
        corpus = SyntheticCorpus(file_size=2048, seed=0)
        assert len(corpus.payload(Compressibility.LOW)) == 2048
