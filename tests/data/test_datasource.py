"""Tests for data sources (repeating and switching producers)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    Compressibility,
    RepeatingSource,
    Segment,
    SwitchingSource,
    SyntheticCorpus,
    iter_blocks,
)


@pytest.fixture(scope="module")
def small_corpus():
    return SyntheticCorpus(file_size=1024, seed=0)


class TestRepeatingSource:
    def test_emits_exact_total(self):
        src = RepeatingSource(b"abc", 10, Compressibility.LOW)
        out = b""
        while True:
            chunk = src.read(4)
            if not chunk:
                break
            out += chunk
        assert out == (b"abc" * 4)[:10]
        assert src.exhausted
        assert src.bytes_emitted == 10

    def test_payload_wraps_seamlessly(self):
        src = RepeatingSource(b"0123456789", 25, Compressibility.LOW)
        assert src.read(25) == b"0123456789" * 2 + b"01234"

    def test_read_past_end_returns_empty(self):
        src = RepeatingSource(b"ab", 3, Compressibility.LOW)
        src.read(100)
        assert src.read(1) == b""

    def test_zero_total(self):
        src = RepeatingSource(b"ab", 0, Compressibility.LOW)
        assert src.read(10) == b""
        assert src.exhausted

    def test_class_at_constant(self):
        src = RepeatingSource(b"ab", 100, Compressibility.HIGH)
        assert src.class_at(0) == Compressibility.HIGH
        assert src.class_at(99) == Compressibility.HIGH

    def test_validation(self):
        with pytest.raises(ValueError):
            RepeatingSource(b"", 10, Compressibility.LOW)
        with pytest.raises(ValueError):
            RepeatingSource(b"x", -1, Compressibility.LOW)
        src = RepeatingSource(b"x", 10, Compressibility.LOW)
        with pytest.raises(ValueError):
            src.read(-1)

    def test_from_corpus(self, small_corpus):
        src = RepeatingSource.from_corpus(
            Compressibility.MODERATE, 5000, corpus=small_corpus
        )
        data = src.read(5000)
        assert len(data) == 5000
        assert data[:1024] == small_corpus.payload(Compressibility.MODERATE)

    @given(
        total=st.integers(min_value=0, max_value=5000),
        chunk=st.integers(min_value=1, max_value=997),
    )
    @settings(max_examples=50)
    def test_total_bytes_conserved(self, total, chunk):
        src = RepeatingSource(b"payload!", total, Compressibility.LOW)
        emitted = 0
        while True:
            data = src.read(chunk)
            if not data:
                break
            emitted += len(data)
        assert emitted == total


class TestSwitchingSource:
    def test_alternating_segments(self, small_corpus):
        src = SwitchingSource.alternating(
            Compressibility.HIGH,
            Compressibility.LOW,
            segment_bytes=10,
            total_bytes=35,
            corpus=small_corpus,
        )
        assert src.total_bytes == 35
        assert src.class_at(0) == Compressibility.HIGH
        assert src.class_at(9) == Compressibility.HIGH
        assert src.class_at(10) == Compressibility.LOW
        assert src.class_at(20) == Compressibility.HIGH
        assert src.class_at(30) == Compressibility.LOW
        assert src.class_at(34) == Compressibility.LOW  # final short segment

    def test_read_crosses_segment_boundaries(self, small_corpus):
        src = SwitchingSource.alternating(
            Compressibility.HIGH,
            Compressibility.LOW,
            segment_bytes=1500,
            total_bytes=4000,
            corpus=small_corpus,
        )
        out = src.read(4000)
        assert len(out) == 4000
        assert src.exhausted
        # First 1500 bytes come from the HIGH payload (wrapped).
        high = small_corpus.payload(Compressibility.HIGH)
        assert out[:1024] == high
        assert out[1024:1500] == high[: 1500 - 1024]

    def test_segments_content_matches_class(self, small_corpus):
        src = SwitchingSource(
            [
                Segment(Compressibility.LOW, 100),
                Segment(Compressibility.MODERATE, 200),
            ],
            corpus=small_corpus,
        )
        low_part = src.read(100)
        mod_part = src.read(200)
        assert low_part == small_corpus.payload(Compressibility.LOW)[:100]
        assert mod_part == small_corpus.payload(Compressibility.MODERATE)[:200]

    def test_validation(self, small_corpus):
        with pytest.raises(ValueError):
            SwitchingSource([], corpus=small_corpus)
        with pytest.raises(ValueError):
            SwitchingSource([Segment(Compressibility.HIGH, 0)], corpus=small_corpus)
        src = SwitchingSource([Segment(Compressibility.HIGH, 5)], corpus=small_corpus)
        with pytest.raises(ValueError):
            src.class_at(-1)
        with pytest.raises(ValueError):
            src.read(-1)

    @given(
        seg=st.integers(min_value=1, max_value=500),
        total=st.integers(min_value=1, max_value=3000),
        chunk=st.integers(min_value=1, max_value=700),
    )
    @settings(max_examples=40, deadline=None)
    def test_total_conserved_property(self, seg, total, chunk):
        corpus = SyntheticCorpus(file_size=256, seed=0)
        src = SwitchingSource.alternating(
            Compressibility.HIGH,
            Compressibility.LOW,
            segment_bytes=seg,
            total_bytes=total,
            corpus=corpus,
        )
        emitted = 0
        while True:
            data = src.read(chunk)
            if not data:
                break
            emitted += len(data)
        assert emitted == total


class TestIterBlocks:
    def test_yields_block_sized_chunks(self):
        src = RepeatingSource(b"abcdef", 20, Compressibility.LOW)
        blocks = list(iter_blocks(src, 8))
        assert [len(b) for b in blocks] == [8, 8, 4]
        assert b"".join(blocks) == (b"abcdef" * 4)[:20]

    def test_block_size_validation(self):
        src = RepeatingSource(b"ab", 4, Compressibility.LOW)
        with pytest.raises(ValueError):
            list(iter_blocks(src, 0))
