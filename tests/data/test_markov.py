"""Tests for the Markov text model."""

from __future__ import annotations

import random

import pytest

from repro.data.markov import MarkovTextModel


@pytest.fixture(scope="module")
def model():
    return MarkovTextModel(order=2)


class TestMarkovTextModel:
    def test_generates_requested_length(self, model):
        rng = random.Random(0)
        for n in (0, 1, 2, 500):
            assert len(model.generate(n, rng)) == n

    def test_deterministic_given_rng(self, model):
        a = model.generate(400, random.Random(5))
        b = model.generate(400, random.Random(5))
        assert a == b

    def test_output_is_english_like(self, model):
        text = model.generate(4000, random.Random(1))
        # Spaces roughly every 4-8 characters, as in prose.
        words = text.split()
        mean_len = sum(map(len, words)) / len(words)
        assert 3 <= mean_len <= 9
        # Vowels present at English-ish frequency.
        vowels = sum(text.count(v) for v in "aeiou")
        assert 0.2 <= vowels / len(text) <= 0.5

    def test_order_validation(self):
        with pytest.raises(ValueError):
            MarkovTextModel(order=0)

    def test_short_training_text_rejected(self):
        with pytest.raises(ValueError):
            MarkovTextModel(order=5, training_text="hi")

    def test_custom_training_text(self):
        model = MarkovTextModel(order=1, training_text="abababababab")
        text = model.generate(50, random.Random(0))
        assert set(text) <= {"a", "b"}

    def test_dead_end_restarts(self):
        # Training text whose final state never recurs: generation must
        # not crash when it reaches the dead end.
        model = MarkovTextModel(order=2, training_text="aaaaaaaaaaaaxy")
        text = model.generate(100, random.Random(0))
        assert len(text) == 100

    def test_generate_bytes_ascii_with_newlines(self, model):
        data = model.generate_bytes(1000, random.Random(2))
        assert len(data) == 1000
        assert all(b < 128 for b in data)
        assert b"\n" in data

    def test_n_states_positive(self, model):
        assert model.n_states > 100
