"""Tests for channel implementations."""

from __future__ import annotations

import threading

import pytest

from repro.nephele import (
    ChannelClosedError,
    ChannelSpec,
    ChannelType,
    CompressionMode,
    FileChannel,
    InMemoryChannel,
    NetworkChannel,
    build_channel,
)


class TestChannelSpec:
    def test_in_memory_cannot_compress(self):
        with pytest.raises(ValueError):
            ChannelSpec(ChannelType.IN_MEMORY, compression=CompressionMode.STATIC)

    def test_defaults(self):
        spec = ChannelSpec()
        assert spec.channel_type is ChannelType.IN_MEMORY
        assert spec.compression is CompressionMode.OFF

    def test_build_channel_dispatch(self):
        assert isinstance(build_channel(ChannelSpec(ChannelType.IN_MEMORY)), InMemoryChannel)
        file_ch = build_channel(ChannelSpec(ChannelType.FILE))
        assert isinstance(file_ch, FileChannel)
        file_ch.close_write()
        file_ch.dispose()
        net_ch = build_channel(ChannelSpec(ChannelType.NETWORK))
        assert isinstance(net_ch, NetworkChannel)
        net_ch.close_write()


class TestInMemoryChannel:
    def test_roundtrip(self):
        ch = InMemoryChannel()
        ch.write_record(b"one")
        ch.write_record(b"two")
        ch.close_write()
        assert ch.read_record() == b"one"
        assert ch.read_record() == b"two"
        assert ch.read_record() is None
        assert ch.read_record() is None  # EOF sticky

    def test_write_after_close_rejected(self):
        ch = InMemoryChannel()
        ch.close_write()
        with pytest.raises(ChannelClosedError):
            ch.write_record(b"late")

    def test_iteration(self):
        ch = InMemoryChannel()
        for i in range(5):
            ch.write_record(bytes([i]))
        ch.close_write()
        assert list(ch) == [bytes([i]) for i in range(5)]

    def test_bounded_backpressure(self):
        spec = ChannelSpec(ChannelType.IN_MEMORY, buffer_records=2)
        ch = InMemoryChannel(spec)
        ch.write_record(b"a")
        ch.write_record(b"b")
        # Third write would block; do it from a thread and unblock by reading.
        done = threading.Event()

        def writer():
            ch.write_record(b"c")
            done.set()

        t = threading.Thread(target=writer, daemon=True)
        t.start()
        assert not done.wait(0.1)  # blocked on full buffer
        assert ch.read_record() == b"a"
        assert done.wait(2.0)


class TestFileChannel:
    @pytest.mark.parametrize(
        "compression,level",
        [
            (CompressionMode.OFF, 0),
            (CompressionMode.STATIC, 2),
            (CompressionMode.ADAPTIVE, 0),
        ],
        ids=["off", "static", "adaptive"],
    )
    def test_roundtrip(self, compression, level, tmp_path):
        spec = ChannelSpec(
            ChannelType.FILE,
            compression=compression,
            static_level=level,
            block_size=512,
        )
        ch = FileChannel(spec, path=str(tmp_path / "chan.dat"))
        records = [bytes([i % 251]) * (i * 7 % 300) for i in range(50)]
        for r in records:
            ch.write_record(r)
        ch.close_write()
        assert list(ch) == records
        ch.dispose()

    def test_read_before_close_rejected(self):
        ch = FileChannel()
        ch.write_record(b"x")
        with pytest.raises(RuntimeError, match="closed for writing"):
            ch.read_record()
        ch.close_write()
        ch.dispose()

    def test_static_compression_shrinks_file(self, tmp_path):
        import os

        raw_path = tmp_path / "raw.dat"
        z_path = tmp_path / "z.dat"
        payload = b"\x00" * 1000
        for path, mode, lvl in ((raw_path, CompressionMode.OFF, 0), (z_path, CompressionMode.STATIC, 1)):
            spec = ChannelSpec(ChannelType.FILE, compression=mode, static_level=lvl, block_size=2048)
            ch = FileChannel(spec, path=str(path))
            for _ in range(50):
                ch.write_record(payload)
            ch.close_write()
        assert os.path.getsize(z_path) < os.path.getsize(raw_path) / 5

    def test_dispose_removes_temp_file(self):
        import os

        ch = FileChannel()
        path = ch.path
        ch.write_record(b"x")
        ch.close_write()
        assert os.path.exists(path)
        ch.dispose()
        assert not os.path.exists(path)

    def test_block_writer_stats_exposed(self):
        ch = FileChannel(ChannelSpec(ChannelType.FILE, compression=CompressionMode.STATIC, static_level=1))
        ch.write_record(b"stat " * 100)
        ch.close_write()
        assert ch.block_writer.bytes_in > 0
        assert ch.block_writer.bytes_out > 0
        ch.dispose()


class TestNetworkChannel:
    def test_roundtrip_threaded(self):
        spec = ChannelSpec(
            ChannelType.NETWORK, compression=CompressionMode.ADAPTIVE, block_size=1024
        )
        ch = NetworkChannel(spec)
        records = [b"record-%d " % i * 20 for i in range(200)]
        received = []

        def reader():
            received.extend(ch)

        t = threading.Thread(target=reader, daemon=True)
        t.start()
        for r in records:
            ch.write_record(r)
        ch.close_write()
        t.join(timeout=10)
        assert not t.is_alive()
        assert received == records

    def test_write_after_close_rejected(self):
        ch = NetworkChannel()
        ch.close_write()
        with pytest.raises(ChannelClosedError):
            ch.write_record(b"late")

    def test_eof_after_close(self):
        ch = NetworkChannel()
        ch.write_record(b"only")
        ch.close_write()
        assert ch.read_record() == b"only"
        assert ch.read_record() is None
