"""Tests for the built-in tasks."""

from __future__ import annotations

import pytest

from repro.data import Compressibility, RepeatingSource
from repro.nephele import (
    BatchTask,
    CollectTask,
    FilterTask,
    InMemoryChannel,
    JobGraph,
    MapTask,
    MergeTask,
    SourceTask,
    TaskContext,
    run_job,
)


def run_task(task, records, n_outputs=1):
    """Drive a task directly with in-memory channels."""
    inp = InMemoryChannel()
    for record in records:
        inp.write_record(record)
    inp.close_write()
    outs = [InMemoryChannel() for _ in range(n_outputs)]
    task.run(TaskContext("t", [inp], outs))
    for out in outs:
        out.close_write()
    return [list(out) for out in outs]


class TestSourceTask:
    def test_emits_in_record_sized_chunks(self):
        task = SourceTask(
            lambda: RepeatingSource(b"abcd", 10, Compressibility.LOW), record_bytes=4
        )
        out = InMemoryChannel()
        task.run(TaskContext("s", [], [out]))
        out.close_write()
        assert list(out) == [b"abcd", b"abcd", b"ab"]

    def test_validation(self):
        with pytest.raises(ValueError):
            SourceTask(lambda: None, record_bytes=0)


class TestFilterTask:
    def test_predicate_applied(self):
        task = FilterTask(lambda r: r.startswith(b"keep"))
        (out,) = run_task(task, [b"keep-1", b"drop-1", b"keep-2"])
        assert out == [b"keep-1", b"keep-2"]
        assert task.records_dropped == 1


class TestBatchTask:
    def test_batches_to_target_size(self):
        task = BatchTask(batch_bytes=10)
        (out,) = run_task(task, [b"aaa"] * 7)  # 21 bytes total
        assert b"".join(out) == b"aaa" * 7
        assert all(len(batch) >= 10 for batch in out[:-1])

    def test_flushes_tail(self):
        task = BatchTask(batch_bytes=100)
        (out,) = run_task(task, [b"tiny"])
        assert out == [b"tiny"]

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchTask(batch_bytes=0)


class TestMergeTask:
    def test_drains_inputs_in_order(self):
        in1, in2 = InMemoryChannel(), InMemoryChannel()
        for record in (b"a1", b"a2"):
            in1.write_record(record)
        in2.write_record(b"b1")
        in1.close_write()
        in2.close_write()
        out = InMemoryChannel()
        MergeTask().run(TaskContext("m", [in1, in2], [out]))
        out.close_write()
        assert list(out) == [b"a1", b"a2", b"b1"]

    def test_fan_in_job(self):
        graph = JobGraph("fanin")
        collector = CollectTask(keep_data=True)
        graph.add_vertex(
            "s1",
            SourceTask(lambda: RepeatingSource(b"x", 4, Compressibility.LOW), record_bytes=2),
        )
        graph.add_vertex(
            "s2",
            SourceTask(lambda: RepeatingSource(b"y", 4, Compressibility.LOW), record_bytes=2),
        )
        graph.add_vertex("merge", MergeTask())
        graph.add_vertex("sink", collector)
        graph.connect("s1", "merge")
        graph.connect("s2", "merge")
        graph.connect("merge", "sink")
        run_job(graph, timeout=30)
        assert sorted(collector.collected) == [b"xx", b"xx", b"yy", b"yy"]


class TestMapTask:
    def test_none_drops_record(self):
        task = MapTask(lambda r: r if r != b"skip" else None)
        (out,) = run_task(task, [b"a", b"skip", b"b"])
        assert out == [b"a", b"b"]
