"""Tests for job-graph construction and validation."""

from __future__ import annotations

import pytest

from repro.nephele import (
    ChannelSpec,
    ChannelType,
    CollectTask,
    JobGraph,
    JobGraphError,
    MapTask,
    SourceTask,
)
from repro.data import Compressibility, RepeatingSource


def src_task():
    return SourceTask(lambda: RepeatingSource(b"x", 10, Compressibility.LOW))


class TestConstruction:
    def test_add_and_connect(self):
        g = JobGraph("j")
        g.add_vertex("a", src_task())
        g.add_vertex("b", CollectTask())
        edge = g.connect("a", "b")
        assert edge.name == "a->b"
        assert g.vertex("a").outputs == [edge]
        assert g.vertex("b").inputs == [edge]

    def test_duplicate_vertex_rejected(self):
        g = JobGraph()
        g.add_vertex("a", src_task())
        with pytest.raises(JobGraphError, match="duplicate"):
            g.add_vertex("a", CollectTask())

    def test_unknown_vertex_rejected(self):
        g = JobGraph()
        g.add_vertex("a", src_task())
        with pytest.raises(JobGraphError, match="unknown"):
            g.connect("a", "ghost")

    def test_self_loop_rejected(self):
        g = JobGraph()
        g.add_vertex("a", src_task())
        with pytest.raises(JobGraphError, match="self-loop"):
            g.connect("a", "a")

    def test_spec_type_conflict_rejected(self):
        g = JobGraph()
        g.add_vertex("a", src_task())
        g.add_vertex("b", CollectTask())
        with pytest.raises(JobGraphError, match="conflicts"):
            g.connect(
                "a", "b", ChannelType.FILE, spec=ChannelSpec(ChannelType.IN_MEMORY)
            )


class TestValidation:
    def test_topological_order_linear(self):
        g = JobGraph()
        for name in "abc":
            g.add_vertex(name, MapTask(lambda r: r))
        g.connect("a", "b")
        g.connect("b", "c")
        assert [v.name for v in g.topological_order()] == ["a", "b", "c"]

    def test_diamond(self):
        g = JobGraph()
        for name in "abcd":
            g.add_vertex(name, MapTask(lambda r: r))
        g.connect("a", "b")
        g.connect("a", "c")
        g.connect("b", "d")
        g.connect("c", "d")
        order = [v.name for v in g.topological_order()]
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_cycle_detected(self):
        g = JobGraph()
        for name in "abc":
            g.add_vertex(name, MapTask(lambda r: r))
        g.connect("a", "b")
        g.connect("b", "c")
        g.connect("c", "a")
        with pytest.raises(JobGraphError, match="cycle"):
            g.topological_order()

    def test_empty_graph_invalid(self):
        with pytest.raises(JobGraphError, match="empty"):
            JobGraph().validate()

    def test_disconnected_vertex_invalid(self):
        g = JobGraph()
        g.add_vertex("a", src_task())
        g.add_vertex("b", CollectTask())
        g.add_vertex("island", CollectTask())
        g.connect("a", "b")
        with pytest.raises(JobGraphError, match="disconnected"):
            g.validate()

    def test_single_vertex_graph_is_valid(self):
        g = JobGraph()
        g.add_vertex("only", CollectTask())
        g.validate()
