"""Tests for record framing."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nephele import (
    RecordDecoder,
    RecordSerializationError,
    encode_record,
    read_records,
)


class TestEncodeDecode:
    def test_roundtrip_single(self):
        decoder = RecordDecoder()
        decoder.feed(encode_record(b"hello"))
        assert decoder.next_record() == b"hello"
        assert decoder.next_record() is None

    def test_empty_record(self):
        decoder = RecordDecoder()
        decoder.feed(encode_record(b""))
        assert decoder.next_record() == b""

    def test_partial_feed(self):
        frame = encode_record(b"abcdef")
        decoder = RecordDecoder()
        decoder.feed(frame[:3])
        assert decoder.next_record() is None
        decoder.feed(frame[3:])
        assert decoder.next_record() == b"abcdef"

    def test_multiple_records_in_one_feed(self):
        decoder = RecordDecoder()
        decoder.feed(encode_record(b"a") + encode_record(b"bb") + encode_record(b"ccc"))
        assert list(decoder.drain()) == [b"a", b"bb", b"ccc"]

    def test_oversize_record_rejected_on_encode(self):
        from repro.nephele.records import MAX_RECORD_BYTES

        with pytest.raises(RecordSerializationError):
            # Fake it via a manipulated length: encoding a real 256 MB
            # record would be wasteful, so check the decoder side too.
            encode_record(b"x" * (MAX_RECORD_BYTES + 1))

    def test_oversize_length_rejected_on_decode(self):
        import struct

        decoder = RecordDecoder()
        decoder.feed(struct.pack("<I", 2**31))
        with pytest.raises(RecordSerializationError):
            decoder.next_record()

    def test_assert_empty(self):
        decoder = RecordDecoder()
        decoder.feed(b"\x05\x00\x00")
        with pytest.raises(RecordSerializationError):
            decoder.assert_empty()

    def test_read_records_from_stream(self):
        payload = b"".join(encode_record(bytes([i]) * i) for i in range(10))
        records = list(read_records(io.BytesIO(payload), chunk_size=7))
        assert records == [bytes([i]) * i for i in range(10)]

    def test_read_records_truncated_stream(self):
        payload = encode_record(b"good") + b"\xff\xff\x00\x00trunc"
        with pytest.raises(RecordSerializationError):
            list(read_records(io.BytesIO(payload)))

    @given(records=st.lists(st.binary(max_size=300), max_size=30))
    @settings(max_examples=100)
    def test_roundtrip_property(self, records):
        decoder = RecordDecoder()
        for r in records:
            decoder.feed(encode_record(r))
        assert list(decoder.drain()) == records
        decoder.assert_empty()

    @given(
        records=st.lists(st.binary(max_size=100), min_size=1, max_size=10),
        chunk=st.integers(min_value=1, max_value=17),
    )
    @settings(max_examples=60)
    def test_roundtrip_any_chunking(self, records, chunk):
        stream = b"".join(encode_record(r) for r in records)
        decoder = RecordDecoder()
        out = []
        for i in range(0, len(stream), chunk):
            decoder.feed(stream[i : i + chunk])
            out.extend(decoder.drain())
        assert out == records
