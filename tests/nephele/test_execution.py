"""Tests for the threaded execution engine."""

from __future__ import annotations

import pytest

from repro.data import Compressibility, RepeatingSource
from repro.nephele import (
    ChannelSpec,
    ChannelType,
    CollectTask,
    CompressionMode,
    FunctionTask,
    JobExecutionError,
    JobGraph,
    MapTask,
    SourceTask,
    run_job,
)

PAYLOAD = b"execution engine payload " * 8  # 200 bytes


def sender_receiver(channel_type, compression=CompressionMode.OFF, total=100_000):
    g = JobGraph("t")
    collector = CollectTask()
    g.add_vertex(
        "send",
        SourceTask(
            lambda: RepeatingSource(PAYLOAD, total, Compressibility.MODERATE),
            record_bytes=1000,
        ),
    )
    g.add_vertex("recv", collector)
    spec = ChannelSpec(channel_type, compression=compression, block_size=4096)
    g.connect("send", "recv", channel_type, spec)
    return g, collector


class TestEndToEnd:
    @pytest.mark.parametrize(
        "channel_type",
        [ChannelType.IN_MEMORY, ChannelType.FILE, ChannelType.NETWORK],
        ids=lambda t: t.value,
    )
    def test_all_bytes_arrive(self, channel_type):
        compression = (
            CompressionMode.ADAPTIVE
            if channel_type is not ChannelType.IN_MEMORY
            else CompressionMode.OFF
        )
        g, collector = sender_receiver(channel_type, compression)
        result = run_job(g, timeout=60)
        assert collector.bytes_received == 100_000
        assert result.wall_seconds > 0

    def test_static_compression_stats(self):
        g, collector = sender_receiver(ChannelType.FILE, CompressionMode.STATIC)
        # static_level defaults to 0; use level 2 via explicit spec
        g2 = JobGraph("t2")
        collector2 = CollectTask()
        g2.add_vertex(
            "send",
            SourceTask(
                lambda: RepeatingSource(PAYLOAD, 100_000, Compressibility.MODERATE),
                record_bytes=1000,
            ),
        )
        g2.add_vertex("recv", collector2)
        g2.connect(
            "send",
            "recv",
            ChannelType.FILE,
            ChannelSpec(
                ChannelType.FILE,
                compression=CompressionMode.STATIC,
                static_level=2,
                block_size=4096,
            ),
        )
        result = run_job(g2, timeout=60)
        (stats,) = result.channel_stats
        assert stats.bytes_in == pytest.approx(100_000, rel=0.01)
        assert stats.compression_ratio < 0.3  # repeated text compresses well
        assert collector2.bytes_received == 100_000

    def test_pipeline_with_map(self):
        g = JobGraph("map")
        collector = CollectTask(keep_data=True)
        g.add_vertex(
            "send",
            SourceTask(
                lambda: RepeatingSource(b"abc", 9, Compressibility.LOW), record_bytes=3
            ),
        )
        g.add_vertex("upper", MapTask(lambda r: r.upper()))
        g.add_vertex("recv", collector)
        g.connect("send", "upper")
        g.connect("upper", "recv")
        run_job(g)
        assert collector.collected == [b"ABC"] * 3

    def test_fan_out_to_two_receivers(self):
        g = JobGraph("fanout")
        c1, c2 = CollectTask(), CollectTask()
        g.add_vertex(
            "send",
            SourceTask(
                lambda: RepeatingSource(b"z", 50, Compressibility.LOW), record_bytes=10
            ),
        )
        g.add_vertex("r1", c1)
        g.add_vertex("r2", c2)
        g.connect("send", "r1")
        g.connect("send", "r2")
        run_job(g)
        assert c1.bytes_received == 50
        assert c2.bytes_received == 50

    def test_multi_stage_mixed_channels(self):
        g = JobGraph("mixed")
        collector = CollectTask()
        g.add_vertex(
            "send",
            SourceTask(
                lambda: RepeatingSource(PAYLOAD, 50_000, Compressibility.MODERATE),
                record_bytes=500,
            ),
        )
        g.add_vertex("relay", MapTask(lambda r: r))
        g.add_vertex("recv", collector)
        g.connect(
            "send",
            "relay",
            ChannelType.NETWORK,
            ChannelSpec(ChannelType.NETWORK, compression=CompressionMode.ADAPTIVE, block_size=2048),
        )
        g.connect(
            "relay",
            "recv",
            ChannelType.FILE,
            ChannelSpec(ChannelType.FILE, compression=CompressionMode.STATIC, static_level=1, block_size=2048),
        )
        run_job(g, timeout=60)
        assert collector.bytes_received == 50_000


class TestFailureHandling:
    def test_task_exception_propagates(self):
        g = JobGraph("bad")

        def boom(ctx):
            raise RuntimeError("task exploded")

        g.add_vertex("bad", FunctionTask(boom))
        with pytest.raises(JobExecutionError) as exc_info:
            run_job(g)
        assert "bad" in exc_info.value.failures
        assert "task exploded" in repr(exc_info.value.failures["bad"])

    def test_downstream_unblocked_by_failed_upstream(self):
        """A failing sender must still close its channels so the
        receiver terminates instead of hanging."""
        g = JobGraph("failchain")
        collector = CollectTask()

        def partial_then_boom(ctx):
            ctx.emit(b"one")
            raise RuntimeError("mid-stream failure")

        g.add_vertex("send", FunctionTask(partial_then_boom))
        g.add_vertex("recv", collector)
        g.connect("send", "recv")
        with pytest.raises(JobExecutionError):
            run_job(g, timeout=30)
        assert collector.records_received == 1

    def test_timeout(self):
        import time

        g = JobGraph("slow")
        g.add_vertex("sleepy", FunctionTask(lambda ctx: time.sleep(10)))
        with pytest.raises(JobExecutionError):
            run_job(g, timeout=0.2)
