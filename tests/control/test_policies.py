"""Unit tests for the fleet allocation policies."""

from __future__ import annotations

import pytest

from repro.control import (
    Assignment,
    FairSharePolicy,
    FleetView,
    FlowSnapshot,
    GreedyThroughputPolicy,
    HillClimbPolicy,
    POLICIES,
    make_policy,
)

MB = 1e6


def snap(fid, *, level=1, rate=50 * MB, ratio=None, weight=1.0):
    return FlowSnapshot(
        flow_id=fid,
        level=level,
        app_rate=rate,
        app_bytes=rate * 10,
        observed_ratio=ratio,
        age_seconds=10.0,
        weight=weight,
    )


def view(*flows, now=100.0):
    return FleetView(now=now, flows=tuple(flows), n_levels=4)


class TestAssignment:
    def test_defaults_leave_flow_alone(self):
        asg = Assignment()
        assert asg.level is None and asg.weight == 1.0

    def test_weight_must_be_positive(self):
        with pytest.raises(ValueError):
            Assignment(weight=0.0)


class TestRegistry:
    def test_all_policies_constructible_by_name(self):
        for name in POLICIES:
            assert make_policy(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("nope")


class TestFairShare:
    def test_everyone_equal_and_adaptive(self):
        out = FairSharePolicy().allocate(view(snap(1), snap(2), snap(3)))
        assert set(out) == {1, 2, 3}
        for asg in out.values():
            assert asg.level is None and asg.weight == 1.0


class TestGreedyThroughput:
    def test_pins_proven_incompressible(self):
        out = GreedyThroughputPolicy().allocate(
            view(snap(1, ratio=0.99), snap(2, ratio=0.35))
        )
        assert out[1].level == 0 and out[1].weight == pytest.approx(0.25)
        assert out[2].level is None and out[2].weight == 1.0

    def test_no_evidence_means_no_action(self):
        # A flow at NO shows ratio 1.0 by construction; the controller
        # never records that, so the policy sees None and must not act.
        out = GreedyThroughputPolicy().allocate(view(snap(1, level=0, ratio=None)))
        assert out[1] == Assignment(level=None, weight=1.0)

    def test_threshold_boundary(self):
        policy = GreedyThroughputPolicy(incompressible_ratio=0.9)
        out = policy.allocate(view(snap(1, ratio=0.9), snap(2, ratio=0.899)))
        assert out[1].level == 0
        assert out[2].level is None

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GreedyThroughputPolicy(incompressible_ratio=0.0)
        with pytest.raises(ValueError):
            GreedyThroughputPolicy(lean_weight=-1.0)


class TestHillClimb:
    def test_first_round_perturbs_one_flow_up(self):
        policy = HillClimbPolicy(step=1.25)
        out = policy.allocate(view(snap(1), snap(2)))
        weights = sorted(a.weight for a in out.values())
        assert weights == [1.0, 1.25]
        assert all(a.level is None for a in out.values())

    def test_regression_reverts_and_flips(self):
        policy = HillClimbPolicy(step=1.25, tolerance=0.02)
        policy.allocate(view(snap(1, rate=100 * MB), snap(2, rate=100 * MB)))
        # Aggregate collapsed well past tolerance: the move on flow 1
        # must be undone and its next move must go the other way.
        out = policy.allocate(view(snap(1, rate=10 * MB), snap(2, rate=10 * MB)))
        # Flow 1 reverted to 1.0; this round's cursor perturbed flow 2.
        assert out[1].weight == pytest.approx(1.0)
        assert out[2].weight == pytest.approx(1.25)
        # Two rounds later flow 1 is perturbed again — downward now.
        out = policy.allocate(view(snap(1, rate=10 * MB), snap(2, rate=10 * MB)))
        assert out[1].weight == pytest.approx(1.0 / 1.25)

    def test_improvement_keeps_move(self):
        policy = HillClimbPolicy(step=1.25)
        policy.allocate(view(snap(1, rate=50 * MB)))
        out = policy.allocate(view(snap(1, rate=80 * MB)))
        # Kept at 1.25, then perturbed again in the same direction.
        assert out[1].weight == pytest.approx(1.25 * 1.25)

    def test_weights_stay_clamped(self):
        policy = HillClimbPolicy(step=2.0, min_weight=0.5, max_weight=2.0)
        out = {}
        for _ in range(6):  # monotone improvement: never reverts
            out = policy.allocate(view(snap(1, rate=50 * MB)))
        assert out[1].weight == pytest.approx(2.0)

    def test_idle_fleet_not_perturbed(self):
        policy = HillClimbPolicy()
        out = policy.allocate(view(snap(1, rate=0.0)))
        assert out[1].weight == pytest.approx(1.0)

    def test_departed_flow_forgotten(self):
        policy = HillClimbPolicy()
        policy.allocate(view(snap(1), snap(2)))
        out = policy.allocate(view(snap(2)))
        assert set(out) == {2}

    def test_consecutive_rejections_back_off_exploration(self):
        """Under a monotonically decaying aggregate rate every probe
        looks harmful, so the rejection streak must open exponentially
        growing probe-free windows and the exploration duty cycle must
        decay (mirrors Algorithm 1's level-probe backoff)."""
        policy = HillClimbPolicy(step=1.25, tolerance=0.02)
        probed = []
        for i in range(40):
            rate = 100 * MB * (0.5**i)
            policy.allocate(view(snap(1, rate=rate), snap(2, rate=rate)))
            probed.append(policy._last_move is not None)
        # Early rounds probe back-to-back, late rounds barely at all.
        assert probed[0] and probed[1]
        assert sum(probed[-16:]) <= 2
        # The gaps between probes grow strictly.
        gaps = [j - i for i, j in zip(
            [k for k, p in enumerate(probed) if p][:-1],
            [k for k, p in enumerate(probed) if p][1:],
        )]
        assert gaps == sorted(gaps) and gaps[-1] > gaps[0]

    def test_accepted_move_resets_backoff(self):
        policy = HillClimbPolicy(step=1.25, tolerance=0.02)
        policy.allocate(view(snap(1, rate=50 * MB)))       # probe up
        policy.allocate(view(snap(1, rate=10 * MB)))       # rejected (streak 1)
        policy.allocate(view(snap(1, rate=10 * MB)))       # probe down
        out = policy.allocate(view(snap(1, rate=80 * MB)))  # accepted: reset
        # No cooldown swallowed this round — the next probe fired.
        assert out[1].weight != pytest.approx(1.0 / 1.25)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HillClimbPolicy(step=1.0)
        with pytest.raises(ValueError):
            HillClimbPolicy(min_weight=1.5)
        with pytest.raises(ValueError):
            HillClimbPolicy(max_backoff=0)
