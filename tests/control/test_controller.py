"""Unit tests for :class:`repro.control.FleetController`."""

from __future__ import annotations

import pytest

from repro.control import Assignment, FleetController
from repro.telemetry.events import (
    BufferPoolStats,
    EventBus,
    FleetRebalanced,
    FlowAccepted,
    FlowClosed,
    FlowRates,
    PipelineQueueDepth,
)

MB = 1e6


def make(policy="fair-share", **kw):
    kw.setdefault("bus", EventBus())
    return FleetController(policy, **kw)


class TestLifecycle:
    def test_direct_open_observe_close(self):
        ctl = make()
        ctl.flow_opened(1, now=0.0)
        ctl.observe_flow(1, now=1.0, level=2, app_rate=40 * MB, observed_ratio=0.5)
        assert ctl.flow_count == 1
        fleet = ctl.fleet_view(2.0)
        assert fleet.flows[0].level == 2
        assert fleet.flows[0].observed_ratio == pytest.approx(0.5)
        assert fleet.flows[0].age_seconds == pytest.approx(2.0)
        ctl.flow_closed(1)
        assert ctl.flow_count == 0

    def test_observe_creates_unknown_flow(self):
        ctl = make()
        ctl.observe_flow(9, now=5.0, level=1, app_rate=1.0)
        assert ctl.flow_count == 1

    def test_attach_is_idempotent_and_detach_restores_idle_bus(self):
        bus = EventBus()
        ctl = make(bus=bus)
        assert not bus.active
        ctl.attach()
        ctl.attach()
        assert bus.active
        ctl.detach()
        assert not bus.active

    def test_context_manager(self):
        bus = EventBus()
        with make(bus=bus):
            assert bus.active
        assert not bus.active


class TestRatioHonesty:
    def test_ratio_at_level_zero_is_discarded(self):
        ctl = make()
        ctl.observe_flow(1, now=1.0, level=0, app_rate=1.0, observed_ratio=1.0)
        assert ctl.fleet_view(1.0).flows[0].observed_ratio is None

    def test_informative_ratio_survives_a_level_pin(self):
        ctl = make()
        ctl.observe_flow(1, now=1.0, level=2, app_rate=1.0, observed_ratio=0.97)
        # Later samples at the pinned level 0 must not erase evidence.
        ctl.observe_flow(1, now=2.0, level=0, app_rate=1.0, observed_ratio=1.0)
        assert ctl.fleet_view(2.0).flows[0].observed_ratio == pytest.approx(0.97)


class TestBusIngestion:
    def test_events_drive_flow_state(self):
        bus = EventBus()
        ctl = make(bus=bus).attach()
        bus.publish(
            FlowAccepted(
                ts=0.0, source="s", flow_id=1, peer="p", mode="echo", active_flows=1
            )
        )
        bus.publish(
            FlowRates(
                ts=1.0,
                source="s",
                flow_id=1,
                level=2,
                app_rate=30 * MB,
                app_bytes=30 * MB,
                observed_ratio=0.4,
            )
        )
        bus.publish(
            PipelineQueueDepth(ts=1.0, source="s", depth=7, in_flight=2, workers=4)
        )
        bus.publish(
            BufferPoolStats(ts=1.0, source="s", hits=1, misses=0, oversize=0, free_slabs=1)
        )
        fleet = ctl.fleet_view(1.0)
        assert fleet.flows[0].app_rate == pytest.approx(30 * MB)
        assert fleet.codec_queue_depth == 7
        assert fleet.codec_workers == 4
        bus.publish(
            FlowClosed(
                ts=2.0,
                source="s",
                flow_id=1,
                mode="echo",
                ok=True,
                reason="completed",
                bytes_in=1,
                bytes_out=1,
                app_bytes=1,
                blocks_in=1,
                blocks_out=1,
                seconds=2.0,
                active_flows=0,
            )
        )
        assert ctl.flow_count == 0
        ctl.detach()


class TestOnTick:
    def test_interval_gate_and_actuation(self):
        applied = []
        ctl = make(
            "greedy-throughput",
            actuator=lambda fid, asg: applied.append((fid, asg)),
            control_interval=1.0,
        )
        ctl.observe_flow(1, now=0.0, level=2, app_rate=1.0, observed_ratio=0.99)
        assert ctl.on_tick(0.0) is not None
        assert applied == [(1, Assignment(level=0, weight=0.25))]
        assert ctl.assignment_for(1) == Assignment(level=0, weight=0.25)
        # Within the interval: no policy pass.
        assert ctl.on_tick(0.5) is None
        assert ctl.rebalances == 1
        assert ctl.on_tick(1.5) is not None
        assert ctl.rebalances == 2

    def test_empty_fleet_never_runs_policy(self):
        ctl = make()
        assert ctl.on_tick(0.0) is None
        assert ctl.rebalances == 0

    def test_rebalance_event_published_when_bus_active(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, FleetRebalanced)
        ctl = make("greedy-throughput", bus=bus)
        ctl.observe_flow(1, now=0.0, level=1, app_rate=1.0, observed_ratio=0.95)
        ctl.observe_flow(2, now=0.0, level=1, app_rate=1.0, observed_ratio=0.2)
        ctl.on_tick(0.0)
        assert len(seen) == 1
        ev = seen[0]
        assert ev.policy == "greedy-throughput"
        assert ev.flows == 2 and ev.pinned == 1 and ev.reweighted == 1

    def test_assignment_updates_snapshot_weight(self):
        ctl = make("hill-climb")
        ctl.observe_flow(1, now=0.0, level=1, app_rate=10 * MB)
        ctl.on_tick(0.0)
        # Hill-climb perturbed the sole moving flow up one step, and the
        # stored assignment is visible through both introspection paths.
        assert ctl.assignment_for(1).weight == pytest.approx(1.25)
        assert ctl.fleet_view(0.0).flows[0].weight == pytest.approx(1.25)

    def test_validates_interval(self):
        with pytest.raises(ValueError):
            make(control_interval=0.0)
