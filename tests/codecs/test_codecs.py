"""Unit and property tests for the codec implementations."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs import (
    Bz2Codec,
    CorruptBlockError,
    LightZlibCodec,
    LzmaCodec,
    MediumZlibCodec,
    NullCodec,
    RleCodec,
    ZlibCodec,
)
from repro.codecs.base import CodecInfo
from repro.codecs.rle_codec import MAX_RUN, MIN_RUN, rle_decode, rle_encode


class TestCodecInfo:
    def test_codec_id_range_enforced(self):
        with pytest.raises(ValueError):
            CodecInfo(codec_id=256, name="bad")
        with pytest.raises(ValueError):
            CodecInfo(codec_id=-1, name="bad")

    def test_ids_are_unique_across_shipped_codecs(self):
        codecs = [
            NullCodec(),
            *[ZlibCodec(i) for i in range(1, 10)],
            *[LzmaCodec(i) for i in range(0, 10)],
            Bz2Codec(1),
            Bz2Codec(9),
            RleCodec(),
        ]
        ids = [c.codec_id for c in codecs]
        assert len(set(ids)) == len(ids)


class TestRoundTrip:
    def test_empty(self, codec):
        assert codec.decompress(codec.compress(b"")) == b""

    def test_simple(self, codec):
        data = b"hello world " * 100
        assert codec.decompress(codec.compress(data)) == data

    def test_all_byte_values(self, codec):
        data = bytes(range(256)) * 16
        assert codec.decompress(codec.compress(data)) == data

    def test_corpus_payloads(self, codec, high_payload, moderate_payload, low_payload):
        for payload in (high_payload, moderate_payload, low_payload):
            assert codec.decompress(codec.compress(payload)) == payload


class TestCompressionEffectiveness:
    """Codecs must actually occupy their ladder positions."""

    def test_zlib_levels_ordered_by_ratio(self, moderate_payload):
        light = len(LightZlibCodec().compress(moderate_payload))
        medium = len(MediumZlibCodec().compress(moderate_payload))
        assert medium <= light

    def test_lzma_beats_zlib_on_text(self, moderate_payload):
        heavy = len(LzmaCodec(preset=2).compress(moderate_payload))
        light = len(LightZlibCodec().compress(moderate_payload))
        assert heavy < light

    def test_rle_excels_on_runs(self):
        data = b"\x00" * 10_000
        assert len(RleCodec().compress(data)) < 200

    def test_rle_harmless_overhead_on_noise(self, low_payload):
        out = RleCodec().compress(low_payload)
        # Worst case adds one control byte per 128 literals.
        assert len(out) <= len(low_payload) * 1.02


class TestCorruptionDetection:
    @pytest.mark.parametrize(
        "codec_cls", [LightZlibCodec, MediumZlibCodec], ids=["zlib1", "zlib6"]
    )
    def test_zlib_rejects_garbage(self, codec_cls):
        with pytest.raises(CorruptBlockError):
            codec_cls().decompress(b"definitely not deflate")

    def test_lzma_rejects_garbage(self):
        with pytest.raises(CorruptBlockError):
            LzmaCodec().decompress(b"definitely not xz data")

    def test_bz2_rejects_garbage(self):
        with pytest.raises(CorruptBlockError):
            Bz2Codec().decompress(b"definitely not bzip2")


class TestParameterValidation:
    def test_zlib_level_bounds(self):
        for bad in (0, 10, -3):
            with pytest.raises(ValueError):
                ZlibCodec(bad)

    def test_lzma_preset_bounds(self):
        for bad in (-1, 10):
            with pytest.raises(ValueError):
                LzmaCodec(bad)

    def test_bz2_level_bounds(self):
        for bad in (0, 10):
            with pytest.raises(ValueError):
                Bz2Codec(bad)


class TestRleFormat:
    def test_min_run_not_encoded_as_run(self):
        # 3 repeats < MIN_RUN: stays literal.
        data = b"aaab"
        encoded = rle_encode(data)
        assert encoded == bytes([len(data) - 1]) + data

    def test_exact_min_run(self):
        data = b"a" * MIN_RUN
        encoded = rle_encode(data)
        assert encoded == bytes([0x80, ord("a")])

    def test_max_run_split(self):
        data = b"b" * (MAX_RUN + 5)
        assert rle_decode(rle_encode(data)) == data

    def test_truncated_literal_detected(self):
        with pytest.raises(CorruptBlockError):
            rle_decode(bytes([10]) + b"ab")  # claims 11 literals, has 2

    def test_truncated_run_detected(self):
        with pytest.raises(CorruptBlockError):
            rle_decode(bytes([0x85]))  # run control byte with no value byte

    @given(st.binary(max_size=4096))
    @settings(max_examples=200)
    def test_roundtrip_property(self, data):
        assert rle_decode(rle_encode(data)) == data

    @given(st.binary(min_size=1, max_size=512), st.integers(min_value=1, max_value=64))
    def test_roundtrip_repeated_patterns(self, pattern, reps):
        data = pattern * reps
        assert rle_decode(rle_encode(data)) == data
