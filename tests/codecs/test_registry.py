"""Tests for the codec registry."""

from __future__ import annotations

import pytest

from repro.codecs import (
    DEFAULT_REGISTRY,
    CodecRegistry,
    LightZlibCodec,
    NullCodec,
    UnknownCodecError,
    build_default_registry,
)
from repro.codecs.base import Codec, CodecInfo


class FakeCodec(Codec):
    def __init__(self, codec_id: int, name: str) -> None:
        self.info = CodecInfo(codec_id=codec_id, name=name)

    def compress(self, data: bytes) -> bytes:
        return data

    def decompress(self, data: bytes) -> bytes:
        return data


class TestRegistry:
    def test_register_and_get(self):
        reg = CodecRegistry()
        codec = FakeCodec(99, "fake")
        reg.register(codec)
        assert reg.get(99) is codec
        assert 99 in reg
        assert len(reg) == 1

    def test_unknown_id_raises(self):
        reg = CodecRegistry()
        with pytest.raises(UnknownCodecError) as exc_info:
            reg.get(42)
        assert exc_info.value.codec_id == 42

    def test_id_collision_rejected(self):
        reg = CodecRegistry()
        reg.register(FakeCodec(7, "one"))
        with pytest.raises(ValueError, match="already bound"):
            reg.register(FakeCodec(7, "two"))

    def test_same_name_reregistration_is_idempotent(self):
        reg = CodecRegistry()
        first = reg.register(FakeCodec(7, "one"))
        second = reg.register(FakeCodec(7, "one"))
        assert second is first

    def test_by_name(self):
        reg = build_default_registry()
        assert reg.by_name("zlib-1").codec_id == LightZlibCodec().codec_id
        with pytest.raises(KeyError):
            reg.by_name("nope")

    def test_default_registry_contains_paper_levels(self):
        # Null, both zlib QuickLZ stand-ins, and LZMA must be resolvable.
        assert DEFAULT_REGISTRY.get(0).name == "null"
        assert DEFAULT_REGISTRY.by_name("zlib-1")
        assert DEFAULT_REGISTRY.by_name("zlib-6")
        assert DEFAULT_REGISTRY.by_name("lzma-2")
        assert DEFAULT_REGISTRY.by_name("lzma-4")  # default HEAVY level

    def test_default_registry_roundtrip_every_codec(self):
        payload = bytes(range(256)) * 4
        for codec in DEFAULT_REGISTRY:
            assert codec.decompress(codec.compress(payload)) == payload

    def test_null_codec_is_id_zero(self):
        assert NullCodec().codec_id == 0
