"""Tests for codec measurement helpers."""

from __future__ import annotations

import pytest

from repro.codecs import LightZlibCodec, NullCodec, measure_codec, measure_many


class TestMeasureCodec:
    def test_basic_measurement(self, moderate_payload):
        m = measure_codec(LightZlibCodec(), moderate_payload, repeats=1)
        assert m.codec_name == "zlib-1"
        assert m.payload_bytes == len(moderate_payload)
        assert 0 < m.compressed_bytes < len(moderate_payload)
        assert 0 < m.ratio < 1
        assert m.compress_mb_per_s > 0
        assert m.decompress_mb_per_s > 0

    def test_null_codec_ratio_is_one(self, moderate_payload):
        m = measure_codec(NullCodec(), moderate_payload, repeats=1)
        assert m.ratio == 1.0

    def test_repeats_validation(self):
        with pytest.raises(ValueError):
            measure_codec(NullCodec(), b"x", repeats=0)

    def test_empty_payload(self):
        m = measure_codec(NullCodec(), b"", repeats=1)
        assert m.ratio == 1.0

    def test_injectable_clock(self):
        ticks = iter(range(100))
        m = measure_codec(
            NullCodec(), b"x" * 1000, repeats=1, clock=lambda: float(next(ticks))
        )
        assert m.compress_seconds == 1.0
        assert m.decompress_seconds == 1.0

    def test_measure_many(self, moderate_payload):
        ms = measure_many([NullCodec(), LightZlibCodec()], moderate_payload, repeats=1)
        assert [m.codec_name for m in ms] == ["null", "zlib-1"]
