"""Tests for codec measurement helpers."""

from __future__ import annotations

import pytest

from repro.codecs import LightZlibCodec, NullCodec, measure_codec, measure_many


class TestMeasureCodec:
    def test_basic_measurement(self, moderate_payload):
        m = measure_codec(LightZlibCodec(), moderate_payload, repeats=1)
        assert m.codec_name == "zlib-1"
        assert m.payload_bytes == len(moderate_payload)
        assert 0 < m.compressed_bytes < len(moderate_payload)
        assert 0 < m.ratio < 1
        assert m.compress_mb_per_s > 0
        assert m.decompress_mb_per_s > 0

    def test_null_codec_ratio_is_one(self, moderate_payload):
        m = measure_codec(NullCodec(), moderate_payload, repeats=1)
        assert m.ratio == 1.0

    def test_repeats_validation(self):
        with pytest.raises(ValueError):
            measure_codec(NullCodec(), b"x", repeats=0)

    def test_empty_payload(self):
        m = measure_codec(NullCodec(), b"", repeats=1)
        assert m.ratio == 1.0

    def test_injectable_clock(self):
        ticks = iter(range(100))
        m = measure_codec(
            NullCodec(), b"x" * 1000, repeats=1, clock=lambda: float(next(ticks))
        )
        assert m.compress_seconds == 1.0
        assert m.decompress_seconds == 1.0

    def test_measure_many(self, moderate_payload):
        ms = measure_many([NullCodec(), LightZlibCodec()], moderate_payload, repeats=1)
        assert [m.codec_name for m in ms] == ["null", "zlib-1"]


class TestClockResolutionClamp:
    """A zero-duration measurement must never turn into ``Infinity``."""

    def frozen_clock_measurement(self):
        # The clock never advances, so both durations read as exactly 0.
        return measure_codec(NullCodec(), b"x" * 1000, repeats=2, clock=lambda: 5.0)

    def test_rates_are_finite_on_clock_tie(self):
        import math

        m = self.frozen_clock_measurement()
        assert m.compress_seconds == 0.0
        assert math.isfinite(m.compress_mb_per_s)
        assert math.isfinite(m.decompress_mb_per_s)
        assert m.compress_mb_per_s > 0

    def test_json_export_never_emits_infinity(self):
        import json

        m = self.frozen_clock_measurement()
        payload = {
            "codec": m.codec_name,
            "ratio": m.ratio,
            "compress_mb_per_s": m.compress_mb_per_s,
            "decompress_mb_per_s": m.decompress_mb_per_s,
        }
        # allow_nan=False raises on inf/nan: this is the regression guard.
        text = json.dumps(payload, allow_nan=False)
        assert "Infinity" not in text


class TestRatioStability:
    def test_deterministic_codec_is_stable(self, moderate_payload):
        m = measure_codec(LightZlibCodec(), moderate_payload, repeats=3)
        assert m.ratio_stable is True

    def test_nondeterministic_codec_is_flagged(self):
        class FlakyCodec(NullCodec):
            name = "flaky"

            def __init__(self):
                self._calls = 0

            def compress(self, data: bytes) -> bytes:
                self._calls += 1
                # Output size varies between repeats.
                return data + b"\x00" * (self._calls % 3)

        m = measure_codec(FlakyCodec(), b"y" * 100, repeats=3)
        assert m.ratio_stable is False
