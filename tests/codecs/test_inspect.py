"""Tests for header-only stream inspection."""

from __future__ import annotations

import io
import os

import pytest

from repro.codecs import (
    BlockWriter,
    LightZlibCodec,
    LzmaCodec,
    NullCodec,
    TruncatedStreamError,
    scan_block_stream,
)


def make_stream(spec):
    """spec: list of (codec, payload) pairs -> BytesIO of frames."""
    buf = io.BytesIO()
    writer = BlockWriter(buf)
    for codec, payload in spec:
        writer.write_block(payload, codec)
    buf.seek(0)
    return buf


class TestScanBlockStream:
    def test_empty_stream(self):
        info = scan_block_stream(io.BytesIO(b""))
        assert info.blocks == 0
        assert info.ratio == 1.0
        assert info.codecs_used == 0

    def test_single_codec(self):
        payload = b"inspection " * 100
        stream = make_stream([(LightZlibCodec(), payload)] * 4)
        info = scan_block_stream(stream)
        assert info.blocks == 4
        assert info.uncompressed_bytes == 4 * len(payload)
        assert info.ratio < 0.5
        assert set(info.per_codec) == {"zlib-1"}
        assert info.per_codec["zlib-1"].blocks == 4

    def test_mixed_codecs(self):
        payload = b"mixed " * 200
        stream = make_stream(
            [
                (NullCodec(), payload),
                (LightZlibCodec(), payload),
                (LzmaCodec(preset=0), payload),
            ]
        )
        info = scan_block_stream(stream)
        assert info.codecs_used == 3
        assert set(info.per_codec) == {"null", "zlib-1", "lzma-0"}

    def test_fallback_counted_separately(self):
        incompressible = os.urandom(2000)
        stream = make_stream([(LightZlibCodec(), incompressible)])
        info = scan_block_stream(stream)
        assert info.fallback_blocks == 1
        assert "null (fallback)" in info.per_codec

    def test_totals_match_stream_size(self):
        payload = b"t" * 500
        stream = make_stream([(NullCodec(), payload)] * 3)
        raw = stream.getvalue()
        info = scan_block_stream(io.BytesIO(raw))
        assert info.stream_bytes == len(raw)

    def test_truncated_header_detected(self):
        stream = make_stream([(NullCodec(), b"x" * 100)])
        raw = stream.getvalue()
        with pytest.raises(TruncatedStreamError):
            scan_block_stream(io.BytesIO(raw[:10]))

    def test_scan_does_not_decompress(self):
        """Inspection must work even when a payload would fail to
        decompress (it only reads headers)."""
        stream = make_stream([(LightZlibCodec(), b"valid " * 100)])
        raw = bytearray(stream.getvalue())
        raw[25] ^= 0xFF  # corrupt the payload body, not the header
        info = scan_block_stream(io.BytesIO(bytes(raw)))
        assert info.blocks == 1
