"""Tests for the self-contained block framing layer."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs import (
    DEFAULT_BLOCK_SIZE,
    HEADER_SIZE,
    MAX_BLOCK_LEN,
    BlockReader,
    BlockWriter,
    CorruptBlockError,
    LightZlibCodec,
    LzmaCodec,
    NullCodec,
    OversizedBlockError,
    RleCodec,
    TruncatedStreamError,
    UnknownCodecError,
    decode_block,
    decode_header,
    decode_payload,
    encode_block,
)
from repro.codecs.block import FLAG_STORED_FALLBACK, MAGIC


class TestEncodeDecode:
    def test_roundtrip(self, codec):
        data = b"block framing roundtrip " * 50
        block = encode_block(data, codec)
        assert decode_block(block.frame) == data

    def test_empty_payload(self, codec):
        block = encode_block(b"", codec)
        assert decode_block(block.frame) == b""

    def test_header_fields(self):
        data = b"x" * 1000
        codec = LightZlibCodec()
        block = encode_block(data, codec)
        assert block.header.codec_id == codec.codec_id
        assert block.header.uncompressed_len == 1000
        assert block.header.compressed_len == len(block.frame) - HEADER_SIZE

    def test_ratio(self):
        block = encode_block(b"\x00" * 1000, LightZlibCodec())
        assert block.ratio < 0.1
        raw = encode_block(b"\x00" * 1000, NullCodec())
        assert raw.ratio == 1.0

    def test_default_block_size_is_papers_128kb(self):
        assert DEFAULT_BLOCK_SIZE == 128 * 1024


class TestStoredFallback:
    def test_incompressible_block_stored_raw(self):
        import os

        data = os.urandom(4096)
        block = encode_block(data, LightZlibCodec())
        assert block.header.stored_fallback
        assert block.header.codec_id == 0
        # Cost is bounded by the header.
        assert block.frame_len == HEADER_SIZE + len(data)
        assert decode_block(block.frame) == data

    def test_fallback_can_be_disabled(self):
        import os

        data = os.urandom(4096)
        block = encode_block(data, LightZlibCodec(), allow_stored_fallback=False)
        assert not block.header.stored_fallback
        assert block.header.codec_id == LightZlibCodec().codec_id

    def test_null_codec_never_flagged(self):
        block = encode_block(b"abc", NullCodec())
        assert not block.header.stored_fallback


class TestCorruption:
    def _frame(self, data=b"corruption test payload " * 20):
        return bytearray(encode_block(data, LightZlibCodec()).frame)

    def test_bad_magic(self):
        frame = self._frame()
        frame[0] ^= 0xFF
        with pytest.raises(CorruptBlockError):
            decode_block(bytes(frame))

    def test_bad_version(self):
        frame = self._frame()
        frame[2] = 99
        with pytest.raises(CorruptBlockError):
            decode_block(bytes(frame))

    def test_payload_bitflip_detected_by_crc(self):
        frame = self._frame()
        frame[HEADER_SIZE + 3] ^= 0x01
        with pytest.raises(CorruptBlockError):
            decode_block(bytes(frame))

    def test_unknown_codec_id(self):
        frame = self._frame()
        frame[3] = 200  # unused codec id
        # CRC still matches the payload, so the registry lookup fires.
        with pytest.raises(UnknownCodecError):
            decode_block(bytes(frame))

    def test_truncated_payload(self):
        frame = self._frame()
        with pytest.raises(TruncatedStreamError):
            decode_block(bytes(frame[:-5]))

    def test_short_header(self):
        with pytest.raises(TruncatedStreamError):
            decode_header(MAGIC + b"\x01")

    def test_length_lie_detected(self):
        # Tamper with the uncompressed length *and* fix nothing else:
        # decode must notice the mismatch after decompression.
        data = b"y" * 500
        frame = bytearray(encode_block(data, NullCodec()).frame)
        frame[8] = (frame[8] + 1) % 256  # uncompressed_len low byte
        with pytest.raises(CorruptBlockError):
            decode_block(bytes(frame))

    def test_oversized_compressed_len_rejected_before_allocation(self):
        # A corrupted length field claiming gigabytes must be rejected
        # at header-validation time, before any buffer is sized by it.
        frame = self._frame()
        frame[12:16] = (0x7FFF_FFFF).to_bytes(4, "little")  # compressed_len
        with pytest.raises(OversizedBlockError) as info:
            decode_header(bytes(frame))
        assert info.value.field == "compressed_len"
        assert info.value.bound == MAX_BLOCK_LEN

    def test_oversized_uncompressed_len_rejected(self):
        frame = self._frame()
        frame[8:12] = (MAX_BLOCK_LEN + 1).to_bytes(4, "little")
        with pytest.raises(OversizedBlockError):
            decode_header(bytes(frame))

    def test_oversized_is_a_corrupt_block_error(self):
        # Callers catching CorruptBlockError keep working unchanged.
        assert issubclass(OversizedBlockError, CorruptBlockError)

    def test_custom_bound_allows_larger_frames(self):
        data = b"z" * 100
        frame = encode_block(data, NullCodec()).frame
        header = decode_header(frame, max_len=200)
        assert header.uncompressed_len == 100
        with pytest.raises(OversizedBlockError):
            decode_header(frame, max_len=50)

    def test_reader_rejects_oversized_header(self):
        frame = self._frame()
        frame[12:16] = (0x4000_0000).to_bytes(4, "little")
        reader = BlockReader(io.BytesIO(bytes(frame)))
        with pytest.raises(OversizedBlockError):
            reader.read_block()


class TestWriterReader:
    def test_stream_roundtrip_mixed_codecs(self):
        buf = io.BytesIO()
        writer = BlockWriter(buf)
        codecs = [NullCodec(), LightZlibCodec(), LzmaCodec(preset=0), RleCodec()]
        blocks = [bytes([i]) * (100 + i * 37) for i in range(12)]
        for i, data in enumerate(blocks):
            writer.write_block(data, codecs[i % len(codecs)])
        assert writer.blocks_written == 12

        buf.seek(0)
        reader = BlockReader(buf)
        out = list(reader)
        assert out == blocks
        assert reader.blocks_read == 12
        assert reader.bytes_out == sum(len(b) for b in blocks)

    def test_reader_handles_short_reads(self):
        """Sockets return partial reads; the reader must loop."""

        class DribbleIO:
            def __init__(self, data: bytes) -> None:
                self._data = data
                self._pos = 0

            def read(self, n: int) -> bytes:
                n = min(n, 3)  # never more than 3 bytes at once
                chunk = self._data[self._pos : self._pos + n]
                self._pos += len(chunk)
                return chunk

        data = b"dribble " * 64
        frame = encode_block(data, LightZlibCodec()).frame
        reader = BlockReader(DribbleIO(frame * 2))
        assert reader.read_block() == data
        assert reader.read_block() == data
        assert reader.read_block() is None

    def test_truncation_mid_stream_raises(self):
        frame = encode_block(b"z" * 300, NullCodec()).frame
        reader = BlockReader(io.BytesIO(frame[: len(frame) // 2]))
        with pytest.raises(TruncatedStreamError):
            reader.read_block()

    def test_clean_eof_returns_none(self):
        reader = BlockReader(io.BytesIO(b""))
        assert reader.read_block() is None

    def test_writer_statistics(self):
        buf = io.BytesIO()
        writer = BlockWriter(buf)
        writer.write_block(b"\x00" * 1000, LightZlibCodec())
        assert writer.bytes_in == 1000
        assert writer.bytes_out == len(buf.getvalue())
        assert writer.bytes_out < 1000  # compressible data actually shrank


class TestBlockProperties:
    @given(data=st.binary(max_size=2048))
    @settings(max_examples=150)
    def test_roundtrip_any_bytes_zlib(self, data):
        assert decode_block(encode_block(data, LightZlibCodec()).frame) == data

    @given(data=st.binary(max_size=2048))
    @settings(max_examples=100)
    def test_roundtrip_any_bytes_null(self, data):
        block = encode_block(data, NullCodec())
        assert decode_block(block.frame) == data
        assert block.frame_len == HEADER_SIZE + len(data)

    @given(
        blocks=st.lists(st.binary(min_size=0, max_size=512), min_size=0, max_size=10),
        codec_idx=st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=60)
    def test_stream_roundtrip_property(self, blocks, codec_idx):
        codec = [NullCodec(), LightZlibCodec(), RleCodec()][codec_idx]
        buf = io.BytesIO()
        writer = BlockWriter(buf)
        for b in blocks:
            writer.write_block(b, codec)
        buf.seek(0)
        assert list(BlockReader(buf)) == blocks

    @given(data=st.binary(max_size=1024))
    @settings(max_examples=100)
    def test_frame_overhead_bounded(self, data):
        """With fallback, framing never costs more than the header."""
        block = encode_block(data, LzmaCodec(preset=0))
        assert block.frame_len <= HEADER_SIZE + len(data)


class TestBufferInputs:
    """encode_block accepts bytes | bytearray | memoryview identically."""

    def test_memoryview_input_matches_bytes(self, codec):
        data = b"buffer protocol " * 100
        from_bytes = encode_block(data, codec).frame
        from_view = encode_block(memoryview(data), codec).frame
        from_slice = encode_block(memoryview(data * 2)[: len(data)], codec).frame
        assert bytes(from_view) == bytes(from_bytes)
        assert bytes(from_slice) == bytes(from_bytes)

    def test_bytearray_input_matches_bytes(self, codec):
        data = b"mutable source " * 64
        assert bytes(encode_block(bytearray(data), codec).frame) == bytes(
            encode_block(data, codec).frame
        )

    def test_stored_fallback_from_memoryview(self):
        """RLE inflates this payload => stored frame, built from a view."""
        data = bytes(range(256)) * 4
        block = encode_block(memoryview(data), RleCodec())
        assert block.header.flags & FLAG_STORED_FALLBACK
        assert decode_block(block.frame) == data

    def test_decode_payload_direct(self):
        data = b"payload api " * 40
        block = encode_block(data, LightZlibCodec())
        header = decode_header(block.frame)
        assert decode_payload(header, bytes(block.frame[HEADER_SIZE:])) == data

    def test_decode_payload_crc_check(self):
        block = encode_block(b"q" * 500, NullCodec())
        payload = bytearray(block.frame[HEADER_SIZE:])
        payload[0] ^= 0xFF
        with pytest.raises(CorruptBlockError):
            decode_payload(decode_header(block.frame), bytes(payload))


class ReadintoIO:
    """Source exposing only ``readinto`` with bounded partial reads."""

    def __init__(self, data: bytes, max_chunk: int = 5) -> None:
        self._data = data
        self._pos = 0
        self.max_chunk = max_chunk
        self.readinto_calls = 0

    def readinto(self, b) -> int:
        self.readinto_calls += 1
        with memoryview(b) as view:
            n = min(view.nbytes, self.max_chunk, len(self._data) - self._pos)
            view[:n] = self._data[self._pos : self._pos + n]
            self._pos += n
            return n


class TestReaderReadinto:
    """BlockReader prefers the source's ``readinto`` (no copy per read)."""

    def frames(self, blocks, codec=None):
        codec = codec or LightZlibCodec()
        return b"".join(bytes(encode_block(b, codec).frame) for b in blocks)

    def test_roundtrip_via_readinto(self):
        blocks = [b"readinto " * 30, b"", b"\x00" * 400]
        source = ReadintoIO(self.frames(blocks), max_chunk=7)
        reader = BlockReader(source)
        assert list(reader) == blocks
        assert source.readinto_calls > 0

    def test_clean_eof_via_readinto(self):
        source = ReadintoIO(self.frames([b"tail" * 50]))
        reader = BlockReader(source)
        assert reader.read_block() == b"tail" * 50
        assert reader.read_block() is None  # EOF at a frame boundary

    def test_truncation_via_readinto(self):
        whole = self.frames([b"cut me off" * 40])
        source = ReadintoIO(whole[: len(whole) - 3])
        reader = BlockReader(source)
        with pytest.raises(TruncatedStreamError):
            reader.read_block()

    def test_read_only_source_still_works(self):
        """Sources without readinto (e.g. test doubles) use read()."""

        class ReadOnlyIO:
            def __init__(self, data: bytes) -> None:
                self._inner = io.BytesIO(data)

            def read(self, n: int) -> bytes:
                return self._inner.read(min(n, 3))

        blocks = [b"fallback path " * 20]
        reader = BlockReader(ReadOnlyIO(self.frames(blocks)))
        assert list(reader) == blocks
