"""Tests for the reporting helpers."""

from __future__ import annotations

import pytest

from repro.experiments.reporting import (
    DIST_HEADERS,
    Distribution,
    check,
    format_grouped_bars,
    format_table,
    format_timeseries,
    geometric_mean,
    mean_sd,
)


class TestFormatTable:
    def test_alignment_and_rule(self):
        out = format_table(["a", "long-header"], [["x", 1], ["yy", 22]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "long-header" in lines[1]
        assert set(lines[2]) == {"-"}
        assert lines[3].startswith("x ")

    def test_cell_wider_than_header(self):
        out = format_table(["h"], [["wide-cell"]])
        header_line, rule, row = out.splitlines()
        assert len(rule) >= len("wide-cell")


class TestDistribution:
    def test_five_number_summary(self):
        d = Distribution.from_samples([1, 2, 3, 4, 5, 6, 7, 8, 9, 10])
        assert d.minimum == 1
        assert d.maximum == 10
        assert d.n == 10
        assert d.p25 < d.median < d.p75
        assert d.mean == pytest.approx(5.5)

    def test_single_sample(self):
        d = Distribution.from_samples([7.0])
        assert d.median == 7.0
        assert d.stdev == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Distribution.from_samples([])

    def test_row_scaling(self):
        d = Distribution.from_samples([1e6, 2e6, 3e6])
        row = d.row(scale=1e6)
        assert len(row) == len(DIST_HEADERS)
        assert row[0] == "2.0"


class TestBarsAndSeries:
    def test_grouped_bars(self):
        out = format_grouped_bars({"G": {"VM": 10.0, "Host": 100.0}})
        assert "G" in out
        assert out.count("#") > 0
        vm_line = [l for l in out.splitlines() if "VM" in l][0]
        host_line = [l for l in out.splitlines() if "Host" in l][0]
        assert host_line.count("#") > vm_line.count("#")

    def test_timeseries_length(self):
        out = format_timeseries([0, 1, 2, 3], [1.0, 2.0, 3.0, 4.0], "x", n_buckets=10)
        assert "|" in out
        assert "peak=" in out

    def test_timeseries_validation(self):
        with pytest.raises(ValueError):
            format_timeseries([], [], "x")
        with pytest.raises(ValueError):
            format_timeseries([1], [1, 2], "x")


class TestSmallHelpers:
    def test_mean_sd_format(self):
        assert mean_sd([100.0, 110.0, 90.0]) == "100 (10)"
        assert mean_sd([5.0]) == "5 (0)"
        assert mean_sd([]) == "-"

    def test_check_ok(self):
        failures = []
        line = check(True, "all good", failures)
        assert line.startswith("[OK")
        assert failures == []

    def test_check_fail_collects(self):
        failures = []
        line = check(False, "broken", failures)
        assert line.startswith("[FAIL")
        assert failures == ["broken"]

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
