"""Smoke + shape tests for the experiment harness.

Each paper artifact runs at a small scale and must (a) complete,
(b) produce its rendered artifact, and (c) pass all of its own
shape checks — the codified versions of the paper's claims.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ablations,
    extensions,
    fig1_cpu_accuracy,
    fig2_net_throughput,
    fig3_file_throughput,
    fig4_adaptivity_high,
    fig5_adaptivity_low,
    fig6_changing_compressibility,
    table2_completion_times,
)
from repro.experiments.common import ExperimentResult, scaled_bytes, scheme_factories
from repro.experiments.runner import EXPERIMENTS, PAPER_SET, main

SCALE = 0.05  # small but structurally meaningful


def assert_result_ok(result: ExperimentResult):
    assert isinstance(result, ExperimentResult)
    assert result.rendered
    assert result.checks
    assert result.ok, f"{result.experiment_id} failed shapes: {result.failures}"


class TestPaperArtifacts:
    def test_fig1(self):
        assert_result_ok(fig1_cpu_accuracy.run(scale=SCALE))

    def test_fig2(self):
        assert_result_ok(fig2_net_throughput.run(scale=SCALE))

    def test_fig3(self):
        assert_result_ok(fig3_file_throughput.run(scale=SCALE))

    def test_table2(self):
        assert_result_ok(table2_completion_times.run(scale=SCALE, repeats=2))

    def test_fig4(self):
        assert_result_ok(fig4_adaptivity_high.run(scale=SCALE))

    def test_fig5(self):
        assert_result_ok(fig5_adaptivity_low.run(scale=SCALE))

    def test_fig6(self):
        assert_result_ok(fig6_changing_compressibility.run(scale=SCALE))


class TestAblations:
    def test_alpha(self):
        assert_result_ok(ablations.run_alpha(scale=SCALE, repeats=1))

    def test_backoff(self):
        assert_result_ok(ablations.run_backoff(scale=SCALE, repeats=1))

    def test_epoch_length(self):
        assert_result_ok(ablations.run_epoch_length(scale=SCALE, repeats=1))

    def test_metrics(self):
        assert_result_ok(ablations.run_metrics(scale=SCALE, repeats=1))


class TestExtensions:
    def test_fileio(self):
        assert_result_ok(extensions.run_fileio(scale=SCALE, repeats=1))

    def test_memory(self):
        assert_result_ok(extensions.run_memory(scale=SCALE, repeats=2))

    def test_fairness(self):
        assert_result_ok(extensions.run_fairness(scale=SCALE))

    def test_pipeline(self):
        assert_result_ok(extensions.run_pipeline(scale=SCALE, repeats=1))

    def test_faults(self):
        assert_result_ok(extensions.run_faults(scale=SCALE))


class TestCommon:
    def test_scheme_factories_cover_table2_rows(self):
        factories = scheme_factories()
        assert set(factories) == {"NO", "LIGHT", "MEDIUM", "HEAVY", "DYNAMIC"}
        for name, factory in factories.items():
            scheme = factory(4)
            assert scheme.name == name

    def test_scaled_bytes(self):
        assert scaled_bytes(1.0) == 50 * 10**9
        assert scaled_bytes(0.1) == 5 * 10**9
        assert scaled_bytes(0.000001) == 200 * 10**6  # floor
        with pytest.raises(ValueError):
            scaled_bytes(0.0)
        with pytest.raises(ValueError):
            scaled_bytes(1.5)

    def test_render_includes_checks(self):
        result = ExperimentResult(
            experiment_id="x", title="t", rendered="body", checks=["[OK  ] fine"]
        )
        out = result.render()
        assert "== x: t ==" in out
        assert "body" in out
        assert "[OK  ] fine" in out


class TestRunnerCli:
    def test_registry_covers_paper_set(self):
        assert set(PAPER_SET) <= set(EXPERIMENTS)
        assert len(EXPERIMENTS) >= 11

    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out

    def test_unknown_experiment(self, capsys):
        assert main(["bogus"]) == 2

    def test_single_experiment_run(self, capsys):
        rc = main(["fig4", "--scale", "0.05"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fig4" in out
        assert "[OK" in out
