"""Failure-injection tests: corruption and truncation end to end."""

from __future__ import annotations

import io
import socket
import threading

import pytest

from repro.codecs import (
    BlockReader,
    BlockWriter,
    CorruptBlockError,
    LightZlibCodec,
    TruncatedStreamError,
    UnknownCodecError,
)
from repro.core import AdaptiveBlockWriter


class TestWireCorruption:
    def _packed_stream(self, payload=b"corruptible " * 400):
        sink = io.BytesIO()
        writer = BlockWriter(sink)
        for offset in range(0, len(payload), 512):
            writer.write_block(payload[offset : offset + 512], LightZlibCodec())
        return sink.getvalue(), payload

    def test_single_bitflip_detected(self):
        raw, _ = self._packed_stream()
        for position in (25, len(raw) // 2, len(raw) - 3):
            corrupted = bytearray(raw)
            corrupted[position] ^= 0x01
            reader = BlockReader(io.BytesIO(bytes(corrupted)))
            with pytest.raises(
                (CorruptBlockError, TruncatedStreamError, UnknownCodecError)
            ):
                list(reader)

    def test_clean_prefix_still_decodes(self):
        """Corruption in block N must not prevent decoding blocks < N."""
        raw, payload = self._packed_stream()
        corrupted = bytearray(raw)
        corrupted[-5] ^= 0xFF  # damage the last block's payload
        reader = BlockReader(io.BytesIO(bytes(corrupted)))
        decoded = []
        with pytest.raises(CorruptBlockError):
            for block in reader:
                decoded.append(block)
        assert b"".join(decoded) == payload[: len(b"".join(decoded))]
        assert len(decoded) >= 1

    def test_truncation_mid_payload(self):
        raw, _ = self._packed_stream()
        reader = BlockReader(io.BytesIO(raw[: len(raw) - 10]))
        with pytest.raises(TruncatedStreamError):
            list(reader)


class TestSocketFailureSurfacing:
    def test_receiver_error_propagates_to_caller(self):
        """A corrupted wire stream must fail loudly, not quietly drop data."""
        from repro.io.sockets import ReceiverThread

        receiver = ReceiverThread()
        receiver.start()
        sock = socket.create_connection(receiver.address)
        # A valid block followed by garbage that parses as a bad header.
        sink = sock.makefile("wb")
        writer = BlockWriter(sink)
        writer.write_block(b"good block", LightZlibCodec())
        sink.write(b"GARBAGE-NOT-A-HEADER-123")
        sink.flush()
        sink.close()
        sock.close()
        receiver.join(timeout=10)
        assert not receiver.is_alive()
        assert receiver.error is not None
        assert receiver.bytes_received == len(b"good block")

    def test_abrupt_disconnect_mid_block(self):
        from repro.io.sockets import ReceiverThread
        from repro.codecs.block import encode_block

        receiver = ReceiverThread()
        receiver.start()
        sock = socket.create_connection(receiver.address)
        frame = encode_block(b"x" * 100_000, LightZlibCodec()).frame
        sock.sendall(frame[: len(frame) // 2])
        sock.close()  # vanish mid-frame
        receiver.join(timeout=10)
        assert receiver.error is not None


class TestWriterMisuse:
    def test_interleaved_write_close_write(self):
        sink = io.BytesIO()
        writer = AdaptiveBlockWriter(sink, block_size=64, clock=lambda: 0.0)
        writer.write(b"a" * 100)
        writer.close()
        writer.close()  # idempotent
        with pytest.raises(ValueError):
            writer.write(b"more")

    def test_sink_failure_propagates(self):
        class ExplodingSink:
            def write(self, data):
                raise OSError("disk full")

        writer = AdaptiveBlockWriter(ExplodingSink(), block_size=16, clock=lambda: 0.0)
        with pytest.raises(OSError, match="disk full"):
            writer.write(b"z" * 64)
