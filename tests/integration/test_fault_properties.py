"""Property tests for the single-fault robustness contract.

ISSUE 4's invariant: for any single injected bit-flip or truncation in
a multi-block stream, decoding either fails with a typed codec error
(strict mode) or loses at most the damaged block(s) (resync mode) —
never a wrong-bytes success and never a hang.  Bit flips in the
header's don't-care bytes (flags, reserved padding) are allowed to
decode cleanly because the CRC deliberately covers only the payload.
"""

from __future__ import annotations

import io

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.codecs import (
    BlockReader,
    BlockWriter,
    CodecError,
    LightZlibCodec,
    encode_block,
)
from repro.core.recovery import ResyncBlockReader
from repro.io.faults import BitFlip, FaultPlan, FaultyReader, Truncate

CODEC = LightZlibCodec()

#: Five unique blocks: compressible but distinct, so any decoded block
#: maps back to exactly one original index.
BLOCKS = [
    (b"block-%02d " % i) * 220 + bytes([i]) * 64 for i in range(5)
]


def _wire() -> bytes:
    sink = io.BytesIO()
    writer = BlockWriter(sink)
    for block in BLOCKS:
        writer.write_block(block, CODEC)
    return sink.getvalue()


WIRE = _wire()
FRAME_LENS = [len(encode_block(b, CODEC).frame) for b in BLOCKS]


def _block_indices(decoded):
    """Map decoded blocks to original indices; fail on unknown bytes."""
    indices = []
    for block in decoded:
        assert block in BLOCKS, "decoder produced bytes that were never sent"
        indices.append(BLOCKS.index(block))
    return indices


class TestSingleBitFlip:
    @given(
        offset=st.integers(min_value=0, max_value=len(WIRE) - 1),
        bit=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=120, deadline=None)
    def test_strict_errors_or_exact_bytes(self, offset, bit):
        plan = FaultPlan([BitFlip(offset, mask=1 << bit)])
        reader = BlockReader(FaultyReader(io.BytesIO(WIRE), plan))
        try:
            decoded = list(reader)
        except CodecError:
            return  # detected — the acceptable strict-mode outcome
        # Undetected flips may only live in CRC-exempt header bytes;
        # the application bytes must still be exactly right.
        assert decoded == BLOCKS

    @given(
        offset=st.integers(min_value=0, max_value=len(WIRE) - 1),
        bit=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=120, deadline=None)
    def test_resync_loses_at_most_one_block(self, offset, bit):
        plan = FaultPlan([BitFlip(offset, mask=1 << bit)])
        reader = ResyncBlockReader(FaultyReader(io.BytesIO(WIRE), plan))
        decoded = list(reader)  # must never raise
        indices = _block_indices(decoded)
        assert indices == sorted(set(indices)), "order or uniqueness broken"
        lost = len(BLOCKS) - len(decoded)
        assert lost <= 1
        assert reader.blocks_skipped == lost
        if lost == 0:
            assert reader.bytes_skipped == 0


class TestSingleTruncation:
    @given(cut=st.integers(min_value=0, max_value=len(WIRE) - 1))
    @settings(max_examples=120, deadline=None)
    def test_strict_errors_or_clean_prefix(self, cut):
        plan = FaultPlan([Truncate(cut)])
        reader = BlockReader(FaultyReader(io.BytesIO(WIRE), plan))
        try:
            decoded = list(reader)
        except CodecError:
            return
        # A cut landing exactly on a frame boundary reads as clean EOF:
        # the decoded stream must then be an exact prefix.
        assert decoded == BLOCKS[: len(decoded)]
        assert sum(FRAME_LENS[: len(decoded)]) == cut

    @given(cut=st.integers(min_value=0, max_value=len(WIRE) - 1))
    @settings(max_examples=120, deadline=None)
    def test_resync_keeps_exactly_the_intact_prefix(self, cut):
        plan = FaultPlan([Truncate(cut)])
        reader = ResyncBlockReader(FaultyReader(io.BytesIO(WIRE), plan))
        decoded = list(reader)  # must never raise
        # Frames wholly before the cut survive; everything else is gone.
        intact = 0
        consumed = 0
        for length in FRAME_LENS:
            if consumed + length <= cut:
                intact += 1
                consumed += length
            else:
                break
        assert decoded == BLOCKS[:intact]
        assert reader.bytes_skipped == cut - consumed
