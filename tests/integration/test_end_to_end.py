"""Cross-module integration tests.

These pin the seams between subsystems: corpus → channels → codecs,
controller ↔ scheme equivalence (the "one brain, two planes" property),
and conservation laws through the whole simulated transfer stack.
"""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AdaptiveController, DecisionModel
from repro.data import Compressibility, RepeatingSource, SyntheticCorpus
from repro.nephele import (
    ChannelSpec,
    ChannelType,
    CollectTask,
    CompressionMode,
    JobGraph,
    SourceTask,
    run_job,
)
from repro.schemes import EpochObservation, RateBasedScheme
from repro.sim import (
    ScenarioConfig,
    make_dynamic_factory,
    make_static_factory,
    run_transfer_scenario,
)

GB = 10**9


class TestOneBrainTwoPlanes:
    """The paper's algorithm must behave identically no matter which
    wrapper drives it: raw DecisionModel, AdaptiveController, or the
    simulator-facing RateBasedScheme."""

    RATES = [90e6, 120e6, 80e6, 85e6, 200e6, 190e6, 60e6, 90e6, 95e6, 91e6]

    def test_model_vs_scheme_identical(self):
        model = DecisionModel(4)
        scheme = RateBasedScheme(4)
        for i, rate in enumerate(self.RATES):
            obs = EpochObservation(
                now=float(i),
                epoch_seconds=2.0,
                app_rate=rate,
                displayed_cpu_util=50.0,
                displayed_bandwidth=1e6,
            )
            assert model.observe(rate) == scheme.on_epoch(obs)

    def test_model_vs_controller_identical(self):
        model = DecisionModel(4)
        controller = AdaptiveController(n_levels=4, epoch_seconds=1.0)
        now = 0.0
        for rate in self.RATES:
            now += 1.0
            controller.record(int(rate))  # 1 second of bytes
            record = controller.poll(now)
            assert record is not None
            assert model.observe(record.app_rate) == record.level_after


class TestPipelineIntegrity:
    @pytest.mark.parametrize("cls", list(Compressibility), ids=lambda c: c.value)
    def test_corpus_through_nephele_adaptive_channel(self, cls):
        corpus = SyntheticCorpus(file_size=64 * 1024, seed=13)
        total = 600_000
        graph = JobGraph("integrity")
        collector = CollectTask(keep_data=True)
        graph.add_vertex(
            "send",
            SourceTask(
                lambda: RepeatingSource.from_corpus(cls, total, corpus),
                record_bytes=8 * 1024,
            ),
        )
        graph.add_vertex("recv", collector)
        graph.connect(
            "send",
            "recv",
            ChannelType.NETWORK,
            ChannelSpec(
                ChannelType.NETWORK,
                compression=CompressionMode.ADAPTIVE,
                block_size=16 * 1024,
                epoch_seconds=0.05,
            ),
        )
        run_job(graph, timeout=60)
        received = b"".join(collector.collected)
        expected = RepeatingSource.from_corpus(cls, total, corpus).read(total)
        assert received == expected

    def test_adaptive_file_roundtrip_across_level_changes(self, tmp_path):
        """A stream whose compressibility flips mid-way must decode
        correctly even though different blocks used different codecs."""
        from repro.data import SwitchingSource
        from repro.io import compress_file, decompress_file

        corpus = SyntheticCorpus(file_size=64 * 1024, seed=14)
        source = SwitchingSource.alternating(
            Compressibility.HIGH, Compressibility.LOW, 200_000, 800_000, corpus
        )
        data = source.read(800_000)
        src = tmp_path / "in.bin"
        src.write_bytes(data)
        packed = tmp_path / "out.abc"
        restored = tmp_path / "back.bin"
        compress_file(str(src), str(packed), block_size=32 * 1024, epoch_seconds=0.01)
        decompress_file(str(packed), str(restored))
        assert restored.read_bytes() == data


class TestSimulationConservation:
    def test_app_bytes_conserved(self):
        cfg = ScenarioConfig(
            scheme_factory=make_dynamic_factory(),
            compressibility=Compressibility.MODERATE,
            total_bytes=1 * GB,
            n_background=2,
            seed=3,
        )
        result = run_transfer_scenario(cfg)
        assert result.total_app_bytes == pytest.approx(1 * GB)
        epoch_bytes = sum(e.app_bytes for e in result.epochs)
        assert epoch_bytes == pytest.approx(result.total_app_bytes, rel=0.01)

    def test_wire_bytes_bounded_by_ratios(self):
        """Wire volume must lie between the best ratio and 1+overhead."""
        cfg = ScenarioConfig(
            scheme_factory=make_dynamic_factory(),
            compressibility=Compressibility.HIGH,
            total_bytes=1 * GB,
            n_background=0,
            seed=4,
        )
        result = run_transfer_scenario(cfg)
        ratio = result.total_wire_bytes / result.total_app_bytes
        assert 0.07 <= ratio <= 1.001

    def test_static_no_faster_when_link_widens(self):
        """Monotonicity: less contention can never slow a transfer."""
        times = []
        for c in (3, 0):
            cfg = ScenarioConfig(
                scheme_factory=make_static_factory(0, "NO"),
                compressibility=Compressibility.LOW,
                total_bytes=1 * GB,
                n_background=c,
                seed=5,
            )
            times.append(run_transfer_scenario(cfg).completion_time)
        assert times[1] < times[0]

    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_any_seed_completes_and_conserves(self, seed):
        cfg = ScenarioConfig(
            scheme_factory=make_dynamic_factory(),
            compressibility=Compressibility.MODERATE,
            total_bytes=500_000_000,
            n_background=1,
            seed=seed,
        )
        result = run_transfer_scenario(cfg)
        assert result.total_app_bytes == pytest.approx(500_000_000)
        assert result.completion_time > 0
        assert all(0 <= e.level <= 3 for e in result.epochs)


class TestDeterminism:
    def test_full_scenario_deterministic(self):
        def run_once():
            cfg = ScenarioConfig(
                scheme_factory=make_dynamic_factory(),
                compressibility=Compressibility.HIGH,
                total_bytes=1 * GB,
                n_background=2,
                seed=99,
            )
            result = run_transfer_scenario(cfg)
            return (
                result.completion_time,
                [e.level for e in result.epochs],
                result.total_wire_bytes,
            )

        assert run_once() == run_once()

    def test_adaptive_stream_deterministic_with_fake_clock(self):
        def run_once():
            corpus = SyntheticCorpus(file_size=32 * 1024, seed=21)
            data = corpus.payload(Compressibility.MODERATE) * 8
            clock_state = {"now": 0.0}

            def clock():
                clock_state["now"] += 0.01
                return clock_state["now"]

            from repro.core import AdaptiveBlockWriter

            sink = io.BytesIO()
            writer = AdaptiveBlockWriter(
                sink, block_size=8 * 1024, epoch_seconds=0.1, clock=clock
            )
            writer.write(data)
            writer.close()
            return sink.getvalue()

        assert run_once() == run_once()
