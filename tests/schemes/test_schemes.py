"""Tests for the decision-scheme zoo."""

from __future__ import annotations

import pytest

from repro.schemes import (
    EpochObservation,
    QueueBasedScheme,
    RateBasedScheme,
    ResourceBasedScheme,
    StaticScheme,
    ThresholdScheme,
    TrainedLevel,
)

MB = 1e6


def obs(
    app_rate=50 * MB,
    cpu=20.0,
    bw=90 * MB,
    queue_slope=0.0,
    now=2.0,
):
    return EpochObservation(
        now=now,
        epoch_seconds=2.0,
        app_rate=app_rate,
        displayed_cpu_util=cpu,
        displayed_bandwidth=bw,
        queue_slope=queue_slope,
    )


class TestStaticScheme:
    def test_never_moves(self):
        s = StaticScheme(4, 2)
        for rate in (1.0, 100.0, 1e9):
            assert s.on_epoch(obs(app_rate=rate)) == 2
        assert s.current_level == 2

    def test_name_default_and_custom(self):
        assert StaticScheme(4, 1).name == "STATIC-1"
        assert StaticScheme(4, 1, name="LIGHT").name == "LIGHT"

    def test_validation(self):
        with pytest.raises(ValueError):
            StaticScheme(4, 4)
        with pytest.raises(ValueError):
            StaticScheme(0, 0)


class TestRateBasedScheme:
    def test_uses_only_app_rate(self):
        """Identical app rates with wildly different displayed metrics
        must produce identical decisions."""
        a = RateBasedScheme(4)
        b = RateBasedScheme(4)
        rates = [90.0, 120.0, 80.0, 80.0, 95.0, 60.0]
        decisions_a = [a.on_epoch(obs(app_rate=r, cpu=5.0, bw=1e9)) for r in rates]
        decisions_b = [b.on_epoch(obs(app_rate=r, cpu=99.0, bw=1.0)) for r in rates]
        assert decisions_a == decisions_b

    def test_name_is_dynamic(self):
        assert RateBasedScheme(4).name == "DYNAMIC"

    def test_delegates_to_decision_model(self):
        s = RateBasedScheme(4)
        lvl = s.on_epoch(obs(app_rate=100.0))
        assert lvl == s.model.current_level == s.current_level == 1


class TestResourceBasedScheme:
    TRAINING = [
        TrainedLevel(comp_speed=float("inf"), ratio=1.0),
        TrainedLevel(comp_speed=200 * MB, ratio=0.2),
        TrainedLevel(comp_speed=140 * MB, ratio=0.12),
        TrainedLevel(comp_speed=25 * MB, ratio=0.08),
    ]

    def test_picks_light_with_honest_metrics(self):
        s = ResourceBasedScheme(self.TRAINING)
        # Honest: CPU mostly idle, true bandwidth 90 MB/s.
        # NO -> 90; LIGHT -> min(180, 450) = 180: LIGHT wins.
        lvl = s.on_epoch(obs(cpu=10.0, bw=90 * MB))
        assert lvl == 1

    def test_skewed_idle_cpu_causes_overcompression(self):
        """The Section II failure mode: VM displays ~idle CPU while the
        host is saturated, and displayed bandwidth collapses (caching /
        fluctuation artifact) -> scheme picks heavy compression."""
        s = ResourceBasedScheme(self.TRAINING, smoothing=1.0)
        lvl = s.on_epoch(obs(cpu=5.0, bw=2 * MB))
        # With 2 MB/s displayed bandwidth: NO->2, LIGHT->10, MEDIUM->16.7,
        # HEAVY->min(23.8, 25) = 23.8: HEAVY wins despite being awful.
        assert lvl == 3

    def test_busy_cpu_discourages_compression(self):
        s = ResourceBasedScheme(self.TRAINING, smoothing=1.0)
        lvl = s.on_epoch(obs(cpu=100.0, bw=90 * MB))
        assert lvl == 0  # no CPU left: predicted comp rate 0

    def test_bandwidth_smoothing(self):
        s = ResourceBasedScheme(self.TRAINING, smoothing=0.5)
        s.on_epoch(obs(bw=100 * MB))
        s.on_epoch(obs(bw=0.0))
        assert s._bw_estimate == pytest.approx(50 * MB)

    def test_validation(self):
        with pytest.raises(ValueError):
            ResourceBasedScheme(self.TRAINING, initial_level=9)
        with pytest.raises(ValueError):
            ResourceBasedScheme(self.TRAINING, smoothing=0.0)


class TestQueueBasedScheme:
    def test_growing_queue_raises_level(self):
        s = QueueBasedScheme(4, threshold=1 * MB)
        assert s.on_epoch(obs(queue_slope=5 * MB)) == 1
        assert s.on_epoch(obs(queue_slope=5 * MB)) == 2

    def test_draining_queue_lowers_level(self):
        s = QueueBasedScheme(4, threshold=1 * MB, initial_level=3)
        assert s.on_epoch(obs(queue_slope=-5 * MB)) == 2

    def test_stable_queue_keeps_level(self):
        s = QueueBasedScheme(4, threshold=1 * MB, initial_level=2)
        assert s.on_epoch(obs(queue_slope=0.5 * MB)) == 2

    def test_clamped_at_bounds(self):
        s = QueueBasedScheme(4, threshold=1 * MB, initial_level=3)
        assert s.on_epoch(obs(queue_slope=99 * MB)) == 3
        s2 = QueueBasedScheme(4, threshold=1 * MB, initial_level=0)
        assert s2.on_epoch(obs(queue_slope=-99 * MB)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            QueueBasedScheme(4, threshold=-1)


class TestThresholdScheme:
    def test_bands(self):
        s = ThresholdScheme(cutoffs=[80 * MB, 40 * MB, 10 * MB])
        assert s.n_levels == 4
        assert s.on_epoch(obs(bw=90 * MB)) == 0
        assert s.on_epoch(obs(bw=50 * MB)) == 1
        assert s.on_epoch(obs(bw=20 * MB)) == 2
        assert s.on_epoch(obs(bw=1 * MB)) == 3

    def test_boundary_inclusive(self):
        s = ThresholdScheme(cutoffs=[80 * MB])
        assert s.on_epoch(obs(bw=80 * MB)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdScheme(cutoffs=[])
        with pytest.raises(ValueError):
            ThresholdScheme(cutoffs=[10.0, 20.0])  # ascending
        with pytest.raises(ValueError):
            ThresholdScheme(cutoffs=[10.0, 10.0])  # duplicate
