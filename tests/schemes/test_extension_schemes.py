"""Tests for the extension schemes (EWMA filter, per-level memory)."""

from __future__ import annotations

import pytest

from repro.schemes import EpochObservation, MemoryRateScheme, SmoothedRateScheme

MB = 1e6


def obs(rate, now=2.0):
    return EpochObservation(
        now=now,
        epoch_seconds=2.0,
        app_rate=rate,
        displayed_cpu_util=50.0,
        displayed_bandwidth=90 * MB,
    )


class TestSmoothedRateScheme:
    def test_name_and_levels(self):
        s = SmoothedRateScheme(4)
        assert s.name == "DYNAMIC-EWMA"
        assert s.current_level == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SmoothedRateScheme(4, smoothing=0.0)
        with pytest.raises(ValueError):
            SmoothedRateScheme(4, smoothing=1.5)

    def test_smoothing_damps_single_outlier(self):
        """While the measurement level stays put, an outlier epoch
        moves the filtered rate by exactly the smoothing weight."""
        s = SmoothedRateScheme(4, smoothing=0.25)
        # Seed the filter state as if previous epochs ran at this level.
        s._ewma = 100 * MB
        s._last_measured_level = s.model.current_level
        s.on_epoch(obs(500 * MB))  # outlier epoch
        assert s._ewma == pytest.approx(0.25 * 500 * MB + 0.75 * 100 * MB)

    def test_filter_resets_on_level_change(self):
        s = SmoothedRateScheme(4, smoothing=0.1)
        lvl0 = s.current_level
        s.on_epoch(obs(100 * MB))
        assert s.current_level != lvl0  # first call probes
        # The next observation must be taken (nearly) raw.
        s.on_epoch(obs(500 * MB))
        assert s._ewma == pytest.approx(500 * MB)

    def test_converges_like_raw_on_clean_rates(self):
        rates = {0: 90.0, 1: 200.0, 2: 150.0, 3: 27.0}
        s = SmoothedRateScheme(4)
        lvl = 0
        seq = []
        for _ in range(60):
            lvl = s.on_epoch(obs(rates[lvl]))
            seq.append(lvl)
        assert seq[-1] == 1
        assert seq.count(1) > 40


class TestMemoryRateScheme:
    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryRateScheme(4, margin=-0.1)
        with pytest.raises(ValueError):
            MemoryRateScheme(4, ema_weight=0.0)
        with pytest.raises(ValueError):
            MemoryRateScheme(4, estimate_ttl_epochs=0)

    def test_probes_unknown_neighbours_first(self):
        s = MemoryRateScheme(4)
        lvl = s.on_epoch(obs(100 * MB))
        assert lvl != 0  # unknown neighbour probed immediately

    def test_converges_to_best_level(self):
        rates = {0: 90.0, 1: 200.0, 2: 150.0, 3: 27.0}
        s = MemoryRateScheme(4)
        lvl = 0
        seq = []
        for _ in range(80):
            lvl = s.on_epoch(obs(rates[lvl] * MB))
            seq.append(lvl)
        assert seq[-1] == 1
        assert seq.count(1) > 50

    def test_transient_dip_does_not_ratchet(self):
        """The failure mode of the raw scheme: a one-epoch dip at the
        good level must not hand the worse neighbour a lasting win."""
        s = MemoryRateScheme(4)
        lvl = 0
        rates = {0: 90.0, 1: 200.0, 2: 150.0, 3: 27.0}
        # Converge to level 1 first.
        for _ in range(20):
            lvl = s.on_epoch(obs(rates[lvl] * MB))
        assert lvl == 1
        # One deep dip (link outage) at level 1.
        lvl = s.on_epoch(obs(20 * MB))
        # Continue with honest rates; within a few epochs it is back at 1
        # and stays.
        tail = []
        for _ in range(12):
            lvl = s.on_epoch(obs(rates[lvl] * MB))
            tail.append(lvl)
        assert tail[-1] == 1
        assert tail.count(1) >= 8

    def test_level_always_valid(self):
        import random

        rng = random.Random(0)
        s = MemoryRateScheme(4)
        for _ in range(300):
            lvl = s.on_epoch(obs(rng.uniform(0, 300) * MB))
            assert 0 <= lvl < 4

    def test_moves_single_step(self):
        import random

        rng = random.Random(1)
        s = MemoryRateScheme(4)
        prev = s.current_level
        for _ in range(200):
            lvl = s.on_epoch(obs(rng.uniform(0, 300) * MB))
            assert abs(lvl - prev) <= 1
            prev = lvl

    def test_stale_estimates_reprobed(self):
        s = MemoryRateScheme(4, estimate_ttl_epochs=3)
        rates = {0: 90.0, 1: 200.0, 2: 150.0, 3: 27.0}
        lvl = 0
        visits_to_2 = 0
        for _ in range(60):
            new = s.on_epoch(obs(rates[lvl] * MB))
            if new == 2 and lvl != 2:
                visits_to_2 += 1
            lvl = new
        # Level 2's estimate keeps going stale, so it keeps being probed.
        assert visits_to_2 >= 3
