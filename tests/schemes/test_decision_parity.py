"""Property-based decision parity: ``decide`` ≡ ``on_epoch``.

The multi-layer FlowView refactor routed every consumer through the
uniform :meth:`~repro.schemes.base.CompressionScheme.decide` path.  The
migration contract is byte-for-byte parity: for *any* observation
sequence, a scheme driven via ``decide`` must produce the identical
level sequence as a fresh twin driven via the historical ``on_epoch``,
and the decision records' metadata must be internally coherent.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schemes import (
    FlowView,
    ManagedScheme,
    MemoryRateScheme,
    QueueBasedScheme,
    RateBasedScheme,
    ResourceBasedScheme,
    SmoothedRateScheme,
    StaticScheme,
    ThresholdScheme,
    TrainedLevel,
)

MB = 1e6

TRAINING = [
    TrainedLevel(comp_speed=float("inf"), ratio=1.0),
    TrainedLevel(comp_speed=200 * MB, ratio=0.2),
    TrainedLevel(comp_speed=140 * MB, ratio=0.12),
    TrainedLevel(comp_speed=25 * MB, ratio=0.08),
]

#: One factory per migrated scheme; each call returns a fresh instance.
SCHEME_FACTORIES = [
    lambda: StaticScheme(4, 2),
    lambda: RateBasedScheme(4),
    lambda: SmoothedRateScheme(4),
    lambda: MemoryRateScheme(4),
    lambda: ResourceBasedScheme(TRAINING),
    lambda: QueueBasedScheme(4, threshold=1 * MB),
    lambda: ThresholdScheme([60 * MB, 30 * MB, 10 * MB]),
    lambda: ManagedScheme(RateBasedScheme(4)),
]


@st.composite
def observation_sequences(draw):
    """Random workload: epochs of rates/metrics a real run could show."""
    n = draw(st.integers(min_value=0, max_value=40))
    epoch = 2.0
    views = []
    for i in range(n):
        views.append(
            FlowView(
                now=(i + 1) * epoch,
                epoch_seconds=epoch,
                app_rate=draw(
                    st.floats(min_value=0.0, max_value=500 * MB, allow_nan=False)
                ),
                displayed_cpu_util=draw(
                    st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
                ),
                displayed_bandwidth=draw(
                    st.floats(min_value=0.0, max_value=200 * MB, allow_nan=False)
                ),
                queue_slope=draw(
                    st.floats(min_value=-10 * MB, max_value=10 * MB, allow_nan=False)
                ),
                observed_ratio=draw(
                    st.one_of(
                        st.none(),
                        st.floats(min_value=0.01, max_value=1.2, allow_nan=False),
                    )
                ),
                level=draw(st.integers(min_value=0, max_value=3)),
                app_bytes=draw(
                    st.floats(min_value=0.0, max_value=1e9, allow_nan=False)
                ),
            )
        )
    return views


class TestDecideOnEpochParity:
    @given(views=observation_sequences())
    @settings(max_examples=60, deadline=None)
    def test_identical_level_sequences(self, views):
        for factory in SCHEME_FACTORIES:
            legacy, uniform = factory(), factory()
            legacy_levels = [legacy.on_epoch(v) for v in views]
            decisions = [uniform.decide(v) for v in views]
            assert [d.level_after for d in decisions] == legacy_levels, (
                f"{uniform.name}: decide() diverged from on_epoch()"
            )

    @given(views=observation_sequences())
    @settings(max_examples=30, deadline=None)
    def test_decision_metadata_coherent(self, views):
        for factory in SCHEME_FACTORIES:
            scheme = factory()
            previous_after = scheme.current_level
            for i, view in enumerate(views):
                decision = scheme.decide(view)
                assert decision.epoch == i
                assert decision.flow_id == view.flow_id
                # level_before chains from the previous decision's after.
                assert decision.level_before == previous_after
                assert 0 <= decision.level_after < scheme.n_levels
                assert decision.level_after == scheme.current_level
                previous_after = decision.level_after

    @given(views=observation_sequences())
    @settings(max_examples=30, deadline=None)
    def test_managed_override_masks_but_inner_still_learns(self, views):
        """A pinned ManagedScheme reports the pin while its inner scheme
        keeps tracking the workload open-loop — releasing the pin lands
        on exactly the level an unpinned twin would hold."""
        pinned = ManagedScheme(RateBasedScheme(4))
        free = RateBasedScheme(4)
        pinned.set_override(0)
        for view in views:
            decision = pinned.decide(view)
            assert decision.level_after == 0
            free.on_epoch(view)
        pinned.set_override(None)
        assert pinned.current_level == free.current_level
