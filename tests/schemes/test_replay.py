"""Tests for observation-trace record/replay."""

from __future__ import annotations

import io

import pytest

from repro.data import Compressibility
from repro.schemes import EpochObservation, RateBasedScheme, StaticScheme
from repro.schemes.replay import (
    HEADER,
    TraceFormatError,
    decisions_from_result,
    dump_trace,
    load_records,
    load_trace,
    observations_from_result,
    replay,
    replay_decisions,
    replay_many,
)
from repro.sim import ScenarioConfig, make_dynamic_factory, run_transfer_scenario


@pytest.fixture(scope="module")
def result():
    cfg = ScenarioConfig(
        scheme_factory=make_dynamic_factory(),
        compressibility=Compressibility.HIGH,
        total_bytes=10**9,
        seed=5,
    )
    return run_transfer_scenario(cfg)


class TestRoundTrip:
    def test_dump_and_load(self, result):
        observations = observations_from_result(result)
        buf = io.StringIO()
        n = dump_trace(observations, buf)
        assert n == len(observations)
        buf.seek(0)
        loaded = list(load_trace(buf))
        assert loaded == observations

    def test_empty_trace_roundtrip(self):
        buf = io.StringIO()
        assert dump_trace([], buf) == 0
        buf.seek(0)
        assert list(load_trace(buf)) == []

    def test_blank_lines_skipped(self, result):
        observations = observations_from_result(result)[:2]
        buf = io.StringIO()
        dump_trace(observations, buf)
        buf.write("\n\n")
        buf.seek(0)
        assert len(list(load_trace(buf))) == 2


class TestV2Decisions:
    def test_header_is_version_2(self):
        assert HEADER["version"] == 2

    def test_roundtrip_with_decisions(self, result):
        observations = observations_from_result(result)
        decisions = decisions_from_result(result)
        buf = io.StringIO()
        dump_trace(observations, buf, decisions=decisions)
        buf.seek(0)
        records = list(load_records(buf))
        assert [obs for obs, _ in records] == observations
        assert [dec for _, dec in records] == decisions

    def test_observations_carry_levels(self, result):
        observations = observations_from_result(result)
        assert [o.level for o in observations] == [e.level for e in result.epochs]

    def test_short_decision_sequence_rejected(self, result):
        observations = observations_from_result(result)
        with pytest.raises(TraceFormatError, match="shorter"):
            dump_trace(observations, io.StringIO(), decisions=[])

    def test_v1_trace_still_loads(self):
        """A seed-era v1 line (seven fields, no fleet context) loads
        with the fleet fields at their lone-flow defaults."""
        buf = io.StringIO(
            '{"format": "repro-observation-trace", "version": 1}\n'
            '{"now": 2.0, "epoch_seconds": 2.0, "app_rate": 5e7, '
            '"displayed_cpu_util": 20.0, "displayed_bandwidth": 9e7, '
            '"queue_slope": 0.0, "observed_ratio": null}\n'
        )
        records = list(load_records(buf))
        assert len(records) == 1
        obs, decision = records[0]
        assert decision is None
        assert obs.app_rate == 5e7
        assert obs.flow_id == 0 and obs.active_flows == 1
        assert obs.worker_weight == 1.0

    def test_recorded_decisions_match_replay(self, result):
        """The recorded decision stream equals a fresh replay through
        the same scheme — the self-containment property v2 exists for."""
        observations = observations_from_result(result)
        recorded = decisions_from_result(result)
        replayed = replay_decisions(observations, RateBasedScheme(4))
        assert [d.level_after for d in replayed] == [
            d.level_after for d in recorded
        ]
        assert [d.level_before for d in replayed] == [
            d.level_before for d in recorded
        ]


class TestFormatErrors:
    def test_empty_file(self):
        with pytest.raises(TraceFormatError, match="empty"):
            list(load_trace(io.StringIO("")))

    def test_wrong_format(self):
        with pytest.raises(TraceFormatError, match="not an observation trace"):
            list(load_trace(io.StringIO('{"format": "something-else"}\n')))

    def test_bad_version(self):
        buf = io.StringIO('{"format": "repro-observation-trace", "version": 99}\n')
        with pytest.raises(TraceFormatError, match="version"):
            list(load_trace(buf))

    def test_garbage_record(self):
        buf = io.StringIO(
            '{"format": "repro-observation-trace", "version": 1}\nnot-json\n'
        )
        with pytest.raises(TraceFormatError, match="line 2"):
            list(load_trace(buf))

    def test_wrong_fields(self):
        buf = io.StringIO(
            '{"format": "repro-observation-trace", "version": 1}\n{"nope": 1}\n'
        )
        with pytest.raises(TraceFormatError):
            list(load_trace(buf))


class TestReplay:
    def test_replay_reproduces_original_decisions(self, result):
        """Replaying the DYNAMIC-recorded trace through a fresh DYNAMIC
        scheme reproduces the recorded next-level sequence exactly
        (the scheme is deterministic in its observations)."""
        observations = observations_from_result(result)
        levels = replay(observations, RateBasedScheme(4))
        assert levels == [e.next_level for e in result.epochs]

    def test_replay_static(self, result):
        observations = observations_from_result(result)
        levels = replay(observations, StaticScheme(4, 2))
        assert levels == [2] * len(observations)

    def test_replay_many(self, result):
        observations = observations_from_result(result)
        table = replay_many(
            observations, [RateBasedScheme(4), StaticScheme(4, 0, name="NO")]
        )
        assert set(table) == {"DYNAMIC", "NO"}
        assert len(table["DYNAMIC"]) == len(observations)
