"""Tests for the token bucket and throttled writer."""

from __future__ import annotations

import io

import pytest

from repro.io import ThrottledWriter, TokenBucket


class FakeTime:
    """Deterministic clock + sleep pair for token-bucket tests."""

    def __init__(self) -> None:
        self.now = 0.0
        self.slept = 0.0

    def clock(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        assert seconds >= 0
        self.now += seconds
        self.slept += seconds


def make_bucket(rate=100.0, capacity=50.0):
    ft = FakeTime()
    bucket = TokenBucket(rate=rate, capacity=capacity, clock=ft.clock, sleep=ft.sleep)
    return bucket, ft


class TestTokenBucket:
    def test_burst_within_capacity_is_free(self):
        bucket, ft = make_bucket()
        bucket.consume(50.0)
        assert ft.slept == 0.0

    def test_sustained_rate_enforced(self):
        bucket, ft = make_bucket(rate=100.0, capacity=50.0)
        bucket.consume(50.0)  # drains the initial burst
        bucket.consume(100.0)  # needs 1 s of refill
        assert ft.slept == pytest.approx(1.0, rel=0.01)

    def test_large_consume_sliced(self):
        bucket, ft = make_bucket(rate=100.0, capacity=10.0)
        bucket.consume(1000.0)  # 100x capacity
        # ~(1000 - 10)/100 s of sleeping.
        assert ft.slept == pytest.approx(9.9, rel=0.05)

    def test_try_consume(self):
        bucket, _ = make_bucket(capacity=10.0)
        assert bucket.try_consume(10.0)
        assert not bucket.try_consume(1.0)

    def test_refill_caps_at_capacity(self):
        bucket, ft = make_bucket(rate=100.0, capacity=10.0)
        bucket.consume(10.0)
        ft.now += 100.0  # long idle
        assert bucket.try_consume(10.0)
        assert not bucket.try_consume(1.0)  # not 10_000 tokens

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0)
        with pytest.raises(ValueError):
            TokenBucket(rate=10, capacity=0)
        bucket, _ = make_bucket()
        with pytest.raises(ValueError):
            bucket.consume(-1)
        with pytest.raises(ValueError):
            bucket.try_consume(-1)


class TestThrottledWriter:
    def test_writes_pass_through(self):
        bucket, _ = make_bucket(rate=1e6, capacity=1e6)
        sink = io.BytesIO()
        writer = ThrottledWriter(sink, bucket)
        writer.write(b"hello")
        writer.flush()
        assert sink.getvalue() == b"hello"
        assert writer.bytes_written == 5

    def test_writes_pay_tokens(self):
        bucket, ft = make_bucket(rate=100.0, capacity=10.0)
        writer = ThrottledWriter(io.BytesIO(), bucket)
        writer.write(b"x" * 110)
        assert ft.slept == pytest.approx(1.0, rel=0.05)
