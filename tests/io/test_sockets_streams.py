"""Tests for real socket transfer and file compression utilities."""

from __future__ import annotations

import os

import pytest

from repro.data import Compressibility, RepeatingSource, SyntheticCorpus
from repro.io import compress_file, decompress_file, run_socket_transfer
from repro.io.sockets import SocketSource, VectoredSocketWriter


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus(file_size=64 * 1024, seed=9)


class TestSocketTransfer:
    def test_adaptive_roundtrip(self, corpus):
        src = RepeatingSource.from_corpus(Compressibility.HIGH, 1_500_000, corpus)
        res = run_socket_transfer(src, block_size=32 * 1024, epoch_seconds=0.1)
        assert res.app_bytes == 1_500_000
        assert res.receiver_bytes == 1_500_000
        assert res.wall_seconds > 0

    def test_static_levels(self, corpus):
        for level in range(4):
            src = RepeatingSource.from_corpus(Compressibility.MODERATE, 300_000, corpus)
            res = run_socket_transfer(src, static_level=level, block_size=32 * 1024)
            assert res.receiver_bytes == 300_000
            if level > 0:
                assert res.compression_ratio < 0.7

    def test_throttled_compressible_beats_wire_rate(self, corpus):
        """With a slow 'link', compression lifts the application rate
        above the wire rate — the paper's core effect, on real bytes."""
        src = RepeatingSource.from_corpus(Compressibility.HIGH, 3_000_000, corpus)
        res = run_socket_transfer(
            src, rate_limit=3e6, block_size=32 * 1024, epoch_seconds=0.1
        )
        assert res.app_rate > 1.8 * 3e6

    def test_adaptive_epochs_recorded(self, corpus):
        src = RepeatingSource.from_corpus(Compressibility.HIGH, 2_000_000, corpus)
        res = run_socket_transfer(
            src, rate_limit=2e6, block_size=32 * 1024, epoch_seconds=0.02
        )
        assert len(res.epochs) >= 1
        assert all(e.app_rate >= 0 for e in res.epochs)

    def test_incompressible_falls_back_gracefully(self, corpus):
        src = RepeatingSource.from_corpus(Compressibility.LOW, 1_000_000, corpus)
        res = run_socket_transfer(src, static_level=1, block_size=32 * 1024)
        # Stored-fallback caps the expansion at the header overhead.
        assert res.compression_ratio < 1.01


class TestParallelReceivePath:
    def test_decode_workers_roundtrip(self, corpus):
        src = RepeatingSource.from_corpus(Compressibility.HIGH, 1_000_000, corpus)
        res = run_socket_transfer(
            src, block_size=32 * 1024, epoch_seconds=0.1, decode_workers=3
        )
        assert res.app_bytes == 1_000_000
        assert res.receiver_bytes == 1_000_000

    def test_unvectored_sender_roundtrip(self, corpus):
        """vectored=False keeps the makefile('wb') sender path working."""
        src = RepeatingSource.from_corpus(Compressibility.MODERATE, 500_000, corpus)
        res = run_socket_transfer(
            src, static_level=2, block_size=32 * 1024, vectored=False
        )
        assert res.receiver_bytes == 500_000

    def test_decode_workers_with_encode_workers(self, corpus):
        """Both pipelines at once: parallel encode into parallel decode."""
        src = RepeatingSource.from_corpus(Compressibility.HIGH, 800_000, corpus)
        res = run_socket_transfer(
            src, static_level=2, block_size=32 * 1024, workers=2, decode_workers=2
        )
        assert res.receiver_bytes == 800_000


class _ChokedSocket:
    """sendmsg stub that accepts at most ``cap`` bytes per call."""

    def __init__(self, cap: int) -> None:
        self.cap = cap
        self.sent = bytearray()
        self.calls = 0

    def sendmsg(self, buffers) -> int:
        self.calls += 1
        budget = self.cap
        for buf in buffers:
            take = min(budget, buf.nbytes)
            self.sent += buf[:take]
            budget -= take
            if budget == 0:
                break
        return self.cap - budget

    def sendall(self, data) -> None:
        self.sent += data


class TestVectoredSocketWriter:
    def test_partial_sends_resume_mid_part(self):
        """Short sendmsg returns (cap smaller than any one part) must
        resume from the first unsent byte, never duplicate or drop."""
        sock = _ChokedSocket(cap=7)
        writer = VectoredSocketWriter(sock)
        parts = (b"header--", b"payload bytes that span several sends")
        n = writer.writev(parts)
        assert n == sum(len(p) for p in parts)
        assert bytes(sock.sent) == b"".join(parts)
        assert sock.calls > 1
        assert writer.bytes_sent == n

    def test_scalar_write_fallback(self):
        sock = _ChokedSocket(cap=1024)
        writer = VectoredSocketWriter(sock)
        assert writer.write(b"plain") == 5
        assert bytes(sock.sent) == b"plain"
        writer.flush()
        writer.close()  # no-ops; the socket stays usable


class TestSocketSource:
    def test_readinto_and_drain(self):
        import socket as socket_module

        left, right = socket_module.socketpair()
        try:
            left.sendall(b"abcdefgh")
            source = SocketSource(right)
            buf = bytearray(5)
            got = source.readinto(buf)
            assert buf[:got] == b"abcdefgh"[:got]
            left.close()
            rest = source.read(-1)
            assert bytes(buf[:got]) + rest == b"abcdefgh"
        finally:
            right.close()


class TestFileCompression:
    def test_roundtrip_adaptive(self, tmp_path, corpus):
        src_path = tmp_path / "input.bin"
        data = corpus.payload(Compressibility.MODERATE) * 4
        src_path.write_bytes(data)
        packed = tmp_path / "packed.abc"
        restored = tmp_path / "restored.bin"

        result = compress_file(str(src_path), str(packed), block_size=16 * 1024)
        assert result.input_bytes == len(data)
        assert result.output_bytes == os.path.getsize(packed)

        n = decompress_file(str(packed), str(restored))
        assert n == len(data)
        assert restored.read_bytes() == data

    def test_static_heavy_smaller_than_light(self, tmp_path, corpus):
        data = corpus.payload(Compressibility.MODERATE) * 4
        src_path = tmp_path / "input.bin"
        src_path.write_bytes(data)
        sizes = {}
        for level in (1, 3):
            out = tmp_path / f"out{level}.abc"
            res = compress_file(str(src_path), str(out), static_level=level)
            sizes[level] = res.output_bytes
        assert sizes[3] < sizes[1]

    @pytest.mark.parametrize("workers", [1, 3])
    def test_decompress_workers_identical(self, tmp_path, corpus, workers):
        data = corpus.payload(Compressibility.HIGH) * 4
        src_path = tmp_path / "input.bin"
        src_path.write_bytes(data)
        packed = tmp_path / "packed.abc"
        restored = tmp_path / f"restored{workers}.bin"
        compress_file(str(src_path), str(packed), block_size=16 * 1024)
        n = decompress_file(str(packed), str(restored), workers=workers)
        assert n == len(data)
        assert restored.read_bytes() == data

    def test_empty_file(self, tmp_path):
        src_path = tmp_path / "empty.bin"
        src_path.write_bytes(b"")
        packed = tmp_path / "empty.abc"
        restored = tmp_path / "restored.bin"
        result = compress_file(str(src_path), str(packed))
        assert result.input_bytes == 0
        assert decompress_file(str(packed), str(restored)) == 0
        assert restored.read_bytes() == b""
