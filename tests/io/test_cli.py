"""Tests for the repro-compress CLI."""

from __future__ import annotations

import pytest

from repro.data import Compressibility, SyntheticCorpus
from repro.io.cli import main


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus(file_size=64 * 1024, seed=31)


@pytest.fixture()
def sample_file(tmp_path, corpus):
    path = tmp_path / "sample.bin"
    path.write_bytes(corpus.payload(Compressibility.MODERATE) * 6)
    return path


class TestPackUnpack:
    def test_adaptive_roundtrip(self, tmp_path, sample_file, capsys):
        packed = tmp_path / "out.abc"
        restored = tmp_path / "back.bin"
        assert main(["pack", str(sample_file), str(packed)]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out
        assert main(["unpack", str(packed), str(restored)]) == 0
        assert restored.read_bytes() == sample_file.read_bytes()

    @pytest.mark.parametrize("level", ["NO", "LIGHT", "MEDIUM", "HEAVY"])
    def test_static_levels(self, tmp_path, sample_file, level):
        packed = tmp_path / f"{level}.abc"
        restored = tmp_path / f"{level}.bin"
        assert main(["pack", str(sample_file), str(packed), "--level", level]) == 0
        assert main(["unpack", str(packed), str(restored)]) == 0
        assert restored.read_bytes() == sample_file.read_bytes()

    def test_heavier_level_smaller_output(self, tmp_path, sample_file):
        import os

        sizes = {}
        for level in ("LIGHT", "HEAVY"):
            packed = tmp_path / f"{level}.abc"
            main(["pack", str(sample_file), str(packed), "--level", level])
            sizes[level] = os.path.getsize(packed)
        assert sizes["HEAVY"] < sizes["LIGHT"]

    def test_block_size_option(self, tmp_path, sample_file):
        packed = tmp_path / "small-blocks.abc"
        assert (
            main(
                ["pack", str(sample_file), str(packed), "--block-size", "4096"]
            )
            == 0
        )

    def test_workers_option_same_bytes(self, tmp_path, sample_file):
        """--workers changes scheduling, never the packed bytes."""
        serial = tmp_path / "serial.abc"
        parallel = tmp_path / "parallel.abc"
        base = ["pack", str(sample_file), "--level", "MEDIUM", "--block-size", "8192"]
        assert main(base[:2] + [str(serial)] + base[2:]) == 0
        assert main(base[:2] + [str(parallel)] + base[2:] + ["--workers", "4"]) == 0
        assert serial.read_bytes() == parallel.read_bytes()
        restored = tmp_path / "back.bin"
        assert main(["unpack", str(parallel), str(restored)]) == 0
        assert restored.read_bytes() == sample_file.read_bytes()

    @pytest.mark.parametrize("workers", [1, 3])
    def test_unpack_workers_identical_output(
        self, tmp_path, sample_file, workers
    ):
        """unpack --workers parallelises decode without changing a byte."""
        packed = tmp_path / "out.abc"
        restored = tmp_path / f"back{workers}.bin"
        assert main(["pack", str(sample_file), str(packed)]) == 0
        assert (
            main(
                [
                    "unpack",
                    str(packed),
                    str(restored),
                    "--workers",
                    str(workers),
                ]
            )
            == 0
        )
        assert restored.read_bytes() == sample_file.read_bytes()

    def test_missing_input(self, tmp_path, capsys):
        rc = main(["pack", str(tmp_path / "ghost"), str(tmp_path / "out")])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_process_backend_same_bytes(self, tmp_path, sample_file):
        """--backend process swaps the substrate, never the packed bytes."""
        from repro.core.procpool import process_backend_available

        if not process_backend_available():
            pytest.skip("process backend unavailable on this platform")
        threaded = tmp_path / "threaded.abc"
        processed = tmp_path / "processed.abc"
        base = ["pack", str(sample_file), "--level", "MEDIUM", "--workers", "2"]
        assert main(base[:2] + [str(threaded)] + base[2:]) == 0
        assert (
            main(base[:2] + [str(processed)] + base[2:] + ["--backend", "process"])
            == 0
        )
        assert processed.read_bytes() == threaded.read_bytes()
        restored = tmp_path / "back.bin"
        assert (
            main(
                [
                    "unpack",
                    str(processed),
                    str(restored),
                    "--workers",
                    "2",
                    "--backend",
                    "process",
                ]
            )
            == 0
        )
        assert restored.read_bytes() == sample_file.read_bytes()

    def test_process_backend_degrades_when_unavailable(
        self, tmp_path, sample_file
    ):
        """A forced-unavailable process backend must not fail the CLI."""
        from repro.core import procpool

        saved = procpool._availability
        procpool._availability = (False, "forced-by-test")
        procpool._fallback_warned.clear()
        try:
            packed = tmp_path / "fallback.abc"
            restored = tmp_path / "fallback.bin"
            assert (
                main(
                    ["pack", str(sample_file), str(packed), "--backend", "process"]
                )
                == 0
            )
            assert (
                main(
                    [
                        "unpack",
                        str(packed),
                        str(restored),
                        "--backend",
                        "process",
                    ]
                )
                == 0
            )
            assert restored.read_bytes() == sample_file.read_bytes()
        finally:
            procpool._availability = saved
            procpool._fallback_warned.clear()


class TestInfo:
    def test_info_reports_codecs(self, tmp_path, sample_file, capsys):
        packed = tmp_path / "out.abc"
        main(["pack", str(sample_file), str(packed), "--level", "MEDIUM"])
        capsys.readouterr()
        assert main(["info", str(packed)]) == 0
        out = capsys.readouterr().out
        assert "blocks" in out
        assert "zlib-6" in out
        assert "ratio" in out

    def test_info_empty_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.abc"
        empty.write_bytes(b"")
        assert main(["info", str(empty)]) == 0
        assert "empty stream" in capsys.readouterr().out

    def test_adaptive_on_fast_sink_prefers_no_compression(
        self, tmp_path, sample_file, capsys
    ):
        """With an unthrottled local sink there is no bottleneck to
        relieve, so the adaptive packer correctly stays at NO — the
        scheme optimizes throughput, not size."""
        packed = tmp_path / "fast.abc"
        main(["pack", str(sample_file), str(packed), "--epoch-seconds", "0.01"])
        capsys.readouterr()
        main(["info", str(packed)])
        out = capsys.readouterr().out
        assert "null" in out

    def test_info_shows_codec_mix(self, tmp_path, corpus, capsys):
        """A stream whose blocks used different codecs (exactly what an
        adaptive transfer produces) is itemized per codec."""
        from repro.codecs import BlockWriter, LightZlibCodec, LzmaCodec, NullCodec

        packed = tmp_path / "mixed.abc"
        payload = corpus.payload(Compressibility.MODERATE)
        with open(packed, "wb") as fp:
            writer = BlockWriter(fp)
            for codec in (NullCodec(), LightZlibCodec(), LzmaCodec(preset=4)):
                for _ in range(3):
                    writer.write_block(payload, codec)
        assert main(["info", str(packed)]) == 0
        out = capsys.readouterr().out
        assert "null" in out
        assert "zlib-1" in out
        assert "lzma-4" in out
        codec_lines = [l for l in out.splitlines() if l.startswith("  ")]
        assert len(codec_lines) == 3


class TestExitCodes:
    """Top-level conventions: Ctrl-C exits 130, dead pipe exits 0."""

    def test_keyboard_interrupt_exits_130(self, capsys):
        from repro.io.cli import _run

        def boom(ns):
            raise KeyboardInterrupt

        assert _run(boom, None) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_broken_pipe_exits_0(self, monkeypatch):
        import os as os_mod

        from repro.io.cli import _run

        monkeypatch.setattr(os_mod, "dup2", lambda *a: None)

        def pipe(ns):
            raise BrokenPipeError

        assert _run(pipe, None) == 0

    def test_missing_file_still_exits_1(self, capsys):
        assert main(["info", "/no/such/file.abc"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_telemetry_main_shares_exit_codes(self, monkeypatch, capsys):
        from repro.io import cli

        def boom(ns):
            raise KeyboardInterrupt

        monkeypatch.setitem(
            cli.telemetry_main.__globals__, "cmd_telemetry_report", boom
        )
        assert cli.telemetry_main(["report", "whatever.jsonl"]) == 130


class TestServeCommand:
    """The `repro-compress serve` daemon, driven as a real subprocess."""

    def test_daemon_serves_and_drains_on_sigterm(self, sample_file):
        import os
        import re
        import signal
        import subprocess
        import sys

        from repro.serve import ServeClient

        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.io.cli",
                "serve",
                "--port",
                "0",
                "--workers",
                "2",
                "--max-flows",
                "4",
            ],
            stdout=subprocess.PIPE,
            text=True,
            env=os.environ.copy(),
        )
        try:
            banner = proc.stdout.readline().strip()
            match = re.match(r"serving on (\S+):(\d+)$", banner)
            assert match, f"unexpected banner {banner!r}"
            host, port = match.group(1), int(match.group(2))
            payload = sample_file.read_bytes()
            result = ServeClient(host, port, timeout=30.0).upload(payload)
            assert result.trailer["app_bytes"] == len(payload)
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30.0)
            assert proc.returncode == 0
            assert "drained: 1 completed" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)
