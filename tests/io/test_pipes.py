"""Tests for bounded and throttled pipes."""

from __future__ import annotations

import threading

import pytest

from repro.io import BoundedPipe, PipeClosedError, ThrottledPipe, TokenBucket


class TestBoundedPipe:
    def test_write_read_roundtrip(self):
        pipe = BoundedPipe()
        pipe.write(b"hello world")
        assert pipe.read(5) == b"hello"
        assert pipe.read(100) == b" world"

    def test_eof_semantics(self):
        pipe = BoundedPipe()
        pipe.write(b"last")
        pipe.close_write()
        assert pipe.read(10) == b"last"
        assert pipe.read(10) == b""
        assert pipe.read(10) == b""

    def test_read_blocks_until_data(self):
        pipe = BoundedPipe()
        result = {}

        def reader():
            result["data"] = pipe.read(3)

        t = threading.Thread(target=reader, daemon=True)
        t.start()
        t.join(0.05)
        assert t.is_alive()  # blocked
        pipe.write(b"abc")
        t.join(2.0)
        assert result["data"] == b"abc"

    def test_write_blocks_when_full(self):
        pipe = BoundedPipe(capacity=4)
        pipe.write(b"full")
        done = threading.Event()

        def writer():
            pipe.write(b"more")
            done.set()

        t = threading.Thread(target=writer, daemon=True)
        t.start()
        assert not done.wait(0.05)
        assert pipe.read(4) == b"full"
        assert done.wait(2.0)

    def test_write_after_close_rejected(self):
        pipe = BoundedPipe()
        pipe.close_write()
        with pytest.raises(PipeClosedError):
            pipe.write(b"x")

    def test_large_write_across_capacity(self):
        pipe = BoundedPipe(capacity=10)
        data = bytes(range(256)) * 4
        received = bytearray()

        def reader():
            while True:
                chunk = pipe.read(7)
                if not chunk:
                    return
                received.extend(chunk)

        t = threading.Thread(target=reader, daemon=True)
        t.start()
        pipe.write(data)
        pipe.close_write()
        t.join(5.0)
        assert bytes(received) == data

    def test_total_bytes(self):
        pipe = BoundedPipe()
        pipe.write(b"12345")
        assert pipe.total_bytes == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            BoundedPipe(capacity=0)

    def test_writev_concatenates_parts(self):
        pipe = BoundedPipe(capacity=1024)
        n = pipe.writev((b"head", memoryview(b"payload")))
        assert n == len(b"headpayload")
        pipe.close_write()
        assert pipe.read(1024) == b"headpayload"

    def test_writev_feeds_block_writer_vectored_path(self):
        """A BlockWriter on a pipe takes the writev branch and stays
        byte-identical to the contiguous write path."""
        import io

        from repro.codecs import BlockWriter, LightZlibCodec

        payload = b"vectored pipe " * 500
        pipe = BoundedPipe(capacity=1 << 20)
        BlockWriter(pipe).write_block(payload, LightZlibCodec())
        pipe.close_write()
        plain = io.BytesIO()
        BlockWriter(plain).write_block(payload, LightZlibCodec())
        assert pipe.read(1 << 20) == plain.getvalue()

    def test_readinto_roundtrip(self):
        pipe = BoundedPipe()
        pipe.write(b"direct into buffer")
        buf = bytearray(6)
        assert pipe.readinto(buf) == 6
        assert bytes(buf) == b"direct"
        assert pipe.readinto(memoryview(bytearray(100))[:1]) == 1

    def test_readinto_eof_returns_zero(self):
        pipe = BoundedPipe()
        pipe.write(b"xy")
        pipe.close_write()
        buf = bytearray(8)
        assert pipe.readinto(buf) == 2
        assert pipe.readinto(buf) == 0
        assert pipe.readinto(bytearray(0)) == 0

    def test_readinto_unblocks_writer(self):
        pipe = BoundedPipe(capacity=4)
        pipe.write(b"full")
        done = threading.Event()

        def write_more():
            pipe.write(b"more")
            done.set()

        t = threading.Thread(target=write_more, daemon=True)
        t.start()
        buf = bytearray(4)
        assert pipe.readinto(buf) == 4
        assert done.wait(timeout=5.0)
        t.join(timeout=5.0)

    def test_read_negative_returns_all(self):
        pipe = BoundedPipe()
        pipe.write(b"everything")
        assert pipe.read(-1) == b"everything"


class TestCloseRead:
    def test_write_after_close_read_rejected(self):
        pipe = BoundedPipe()
        pipe.close_read()
        with pytest.raises(PipeClosedError):
            pipe.write(b"x")

    def test_close_read_discards_buffer(self):
        pipe = BoundedPipe()
        pipe.write(b"pending data")
        pipe.close_read()
        assert pipe.buffered == 0
        assert pipe.read(100) == b""

    def test_close_read_unblocks_full_pipe_writer(self):
        """The in-process analogue of a connection reset: a producer
        blocked on a full pipe must wake with PipeClosedError, not
        hang, when the consumer abandons the read side."""
        pipe = BoundedPipe(capacity=4)
        pipe.write(b"full")
        outcome = {}

        def writer():
            try:
                pipe.write(b"more")
                outcome["result"] = "wrote"
            except PipeClosedError:
                outcome["result"] = "closed"

        t = threading.Thread(target=writer, daemon=True)
        t.start()
        t.join(0.05)
        assert t.is_alive()  # blocked on the full buffer
        pipe.close_read()
        t.join(5.0)
        assert not t.is_alive()
        assert outcome["result"] == "closed"

    def test_close_read_unblocks_blocked_reader(self):
        pipe = BoundedPipe()
        result = {}

        def reader():
            result["data"] = pipe.read(3)

        t = threading.Thread(target=reader, daemon=True)
        t.start()
        t.join(0.05)
        assert t.is_alive()
        pipe.close_read()
        t.join(5.0)
        assert not t.is_alive()
        assert result["data"] == b""

    def test_readinto_after_close_read(self):
        pipe = BoundedPipe()
        pipe.write(b"abc")
        pipe.close_read()
        assert pipe.readinto(bytearray(8)) == 0


class TestThrottledPipe:
    def test_reads_paced_by_bucket(self):
        class FT:
            now = 0.0
            slept = 0.0

            def clock(self):
                return self.now

            def sleep(self, s):
                self.now += s
                self.slept += s

        ft = FT()
        bucket = TokenBucket(rate=100.0, capacity=10.0, clock=ft.clock, sleep=ft.sleep)
        pipe = ThrottledPipe(bucket, capacity=1000)
        pipe.write(b"x" * 110)
        pipe.close_write()
        out = bytearray()
        while True:
            chunk = pipe.read(50)
            if not chunk:
                break
            out.extend(chunk)
        assert len(out) == 110
        assert ft.slept == pytest.approx(1.0, rel=0.05)

    def test_readinto_consumes_tokens(self):
        class FT:
            now = 0.0
            slept = 0.0

            def clock(self):
                return self.now

            def sleep(self, s):
                self.now += s
                self.slept += s

        ft = FT()
        bucket = TokenBucket(rate=100.0, capacity=10.0, clock=ft.clock, sleep=ft.sleep)
        pipe = ThrottledPipe(bucket, capacity=1000)
        pipe.write(b"y" * 110)
        pipe.close_write()
        buf = bytearray(50)
        total = 0
        while True:
            got = pipe.readinto(buf)
            if not got:
                break
            total += got
        assert total == 110
        assert ft.slept == pytest.approx(1.0, rel=0.05)
