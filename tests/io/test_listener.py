"""Tests for the shared listener-socket helper (SO_REUSEADDR, backlog)."""

from __future__ import annotations

import socket

import pytest

from repro.io import DEFAULT_BACKLOG, open_listener


class TestOpenListener:
    def test_binds_and_listens(self):
        sock = open_listener()
        try:
            host, port = sock.getsockname()
            assert host == "127.0.0.1"
            assert port > 0
            with socket.create_connection((host, port), timeout=5.0):
                pass
        finally:
            sock.close()

    def test_reuse_addr_set_by_default(self):
        sock = open_listener()
        try:
            assert sock.getsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR) != 0
        finally:
            sock.close()

    def test_reuse_addr_can_be_disabled(self):
        sock = open_listener(reuse_addr=False)
        try:
            assert sock.getsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR) == 0
        finally:
            sock.close()

    def test_rapid_rebind_same_port(self):
        """Restarting a daemon on its port must not hit EADDRINUSE.

        A closed connection parks the (addr, port) pair in TIME_WAIT;
        without SO_REUSEADDR the rebind below fails for minutes.
        """
        first = open_listener()
        host, port = first.getsockname()
        with socket.create_connection((host, port), timeout=5.0):
            conn, _ = first.accept()
            conn.close()
        first.close()
        second = open_listener(host, port)
        try:
            assert second.getsockname()[1] == port
        finally:
            second.close()

    def test_backlog_must_be_positive(self):
        with pytest.raises(ValueError):
            open_listener(backlog=0)

    def test_default_backlog_constant(self):
        assert DEFAULT_BACKLOG >= 16


class TestBacklogPlumbing:
    def test_receiver_thread_accepts_backlog_kwarg(self):
        from repro.io.sockets import ReceiverThread

        receiver = ReceiverThread(backlog=4)
        try:
            assert receiver.address[1] > 0
        finally:
            receiver.stop()
