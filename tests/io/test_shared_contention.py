"""Real-mode shared-I/O contention: flows sharing one token bucket.

The thread-safe :class:`~repro.io.throttle.TokenBucket` doubles as a
shared link: several writers paying tokens from the same bucket contend
exactly like co-located VMs on one NIC.  These tests reproduce the
paper's core effect — compression multiplies effective throughput on a
contended link — on real bytes with real codecs.
"""

from __future__ import annotations

import io
import threading

import pytest

from repro.codecs import BlockReader
from repro.core import AdaptiveBlockWriter, StaticBlockWriter
from repro.data import Compressibility, SyntheticCorpus
from repro.io import ThrottledWriter, TokenBucket


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus(file_size=128 * 1024, seed=41)


def run_contended_transfer(
    corpus,
    *,
    adaptive: bool,
    static_level: int = 0,
    n_background: int = 2,
    payload_bytes: int = 1_500_000,
    link_rate: float = 8e6,
):
    """One foreground writer + background writers on a shared bucket."""
    bucket = TokenBucket(rate=link_rate, capacity=256 * 1024)
    stop = threading.Event()

    def background():
        sink = ThrottledWriter(io.BytesIO(), bucket)
        junk = b"\xa5" * 8192
        while not stop.is_set():
            sink.write(junk)

    threads = [
        threading.Thread(target=background, daemon=True) for _ in range(n_background)
    ]
    for thread in threads:
        thread.start()

    payload = corpus.payload(Compressibility.HIGH)
    raw_sink = io.BytesIO()
    throttled = ThrottledWriter(raw_sink, bucket)
    if adaptive:
        writer = AdaptiveBlockWriter(
            throttled, block_size=32 * 1024, epoch_seconds=0.05
        )
    else:
        writer = StaticBlockWriter(throttled, static_level, block_size=32 * 1024)

    import time

    t0 = time.monotonic()
    written = 0
    while written < payload_bytes:
        chunk = payload[written % len(payload) :][: 32 * 1024]
        writer.write(chunk)
        written += len(chunk)
    writer.close()
    elapsed = time.monotonic() - t0
    stop.set()
    for thread in threads:
        thread.join(timeout=5)

    raw_sink.seek(0)
    restored = b"".join(BlockReader(raw_sink))
    assert len(restored) == written
    return written / elapsed  # application bytes per second


class TestRealSharedContention:
    def test_background_flows_reduce_raw_throughput(self, corpus):
        alone = run_contended_transfer(corpus, adaptive=False, n_background=0)
        crowded = run_contended_transfer(corpus, adaptive=False, n_background=2)
        assert crowded < 0.8 * alone

    def test_compression_reclaims_contended_link(self, corpus):
        """The paper's headline effect on real bytes: under contention,
        adaptive compression multiplies the application rate.  The
        short transfer still pays its start-up probing, so the bar here
        is 1.6x; the asymptotic gain is ~1/ratio (>5x on this data)."""
        raw = run_contended_transfer(corpus, adaptive=False, n_background=2)
        compressed = run_contended_transfer(
            corpus, adaptive=True, n_background=2, payload_bytes=2_500_000
        )
        assert compressed > 1.6 * raw

    def test_static_light_also_wins_but_needs_choosing(self, corpus):
        """LIGHT static matches adaptive here — the point of DYNAMIC is
        that nobody had to know that in advance."""
        light = run_contended_transfer(
            corpus, adaptive=False, static_level=1, n_background=2
        )
        adaptive = run_contended_transfer(corpus, adaptive=True, n_background=2)
        assert adaptive > 0.5 * light
