"""Tests for the deterministic fault-injection wrappers."""

from __future__ import annotations

import io

import pytest

from repro.io.faults import (
    BitFlip,
    FaultPlan,
    FaultyReader,
    FaultyWriter,
    Reset,
    Stall,
    Truncate,
)
from repro.io.pipes import BoundedPipe
from repro.telemetry.events import BUS, FaultInjected


@pytest.fixture(autouse=True)
def clean_bus():
    BUS.clear()
    yield
    BUS.clear()


class TestFaultPlan:
    def test_sorted_by_offset(self):
        plan = FaultPlan([BitFlip(50), Truncate(10), Stall(30)])
        assert [f.offset for f in plan] == [10, 30, 50]

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan([BitFlip(-1)])

    def test_seeded_deterministic(self):
        a = FaultPlan.seeded(7, 10_000, bitflips=3, stalls=2, truncate=True)
        b = FaultPlan.seeded(7, 10_000, bitflips=3, stalls=2, truncate=True)
        assert a.faults == b.faults
        assert len(a) == 6

    def test_seeded_different_seeds_differ(self):
        a = FaultPlan.seeded(1, 10_000, bitflips=5)
        b = FaultPlan.seeded(2, 10_000, bitflips=5)
        assert a.faults != b.faults

    def test_seeded_offsets_in_range(self):
        plan = FaultPlan.seeded(3, 1000, bitflips=50, truncate=True, reset=True)
        assert all(0 <= f.offset < 1000 for f in plan)

    def test_seeded_requires_room(self):
        with pytest.raises(ValueError):
            FaultPlan.seeded(1, 0, bitflips=1)


class TestFaultyWriter:
    def test_bitflip_at_exact_offset(self):
        sink = io.BytesIO()
        w = FaultyWriter(sink, FaultPlan([BitFlip(5, mask=0x80)]))
        w.write(b"\x00" * 4)
        w.write(b"\x00" * 4)
        assert sink.getvalue() == b"\x00" * 5 + b"\x80" + b"\x00" * 2
        assert w.faults_fired == 1

    def test_truncate_swallows_rest_silently(self):
        sink = io.BytesIO()
        w = FaultyWriter(sink, FaultPlan([Truncate(6)]))
        assert w.write(b"abcdefgh") == 8  # full length reported
        assert w.write(b"ijk") == 3
        assert sink.getvalue() == b"abcdef"
        assert w.bytes_seen == 11

    def test_reset_raises_after_prefix(self):
        sink = io.BytesIO()
        w = FaultyWriter(sink, FaultPlan([Reset(4)]))
        with pytest.raises(ConnectionResetError):
            w.write(b"abcdefgh")
        assert sink.getvalue() == b""  # nothing written once the reset fires

    def test_stall_sleeps_injected(self):
        naps = []
        sink = io.BytesIO()
        w = FaultyWriter(
            sink, FaultPlan([Stall(3, seconds=0.25)]), sleep=naps.append
        )
        w.write(b"abcdefgh")
        assert naps == [0.25]
        assert sink.getvalue() == b"abcdefgh"

    def test_multiple_flips_one_chunk(self):
        sink = io.BytesIO()
        w = FaultyWriter(
            sink, FaultPlan([BitFlip(0, mask=1), BitFlip(2, mask=2)])
        )
        w.write(b"\x00\x00\x00\x00")
        assert sink.getvalue() == b"\x01\x00\x02\x00"

    def test_publishes_fault_injected(self):
        events = []
        BUS.subscribe(events.append, FaultInjected)
        sink = io.BytesIO()
        w = FaultyWriter(sink, FaultPlan([BitFlip(1), Truncate(3)]))
        w.write(b"abcdef")
        assert [e.kind for e in events] == ["bitflip", "truncate"]
        assert [e.offset for e in events] == [1, 3]
        assert all(e.side == "write" for e in events)


class TestFaultyReader:
    def test_bitflip_on_read(self):
        r = FaultyReader(io.BytesIO(b"\x00" * 8), FaultPlan([BitFlip(6, mask=1)]))
        assert r.read(4) == b"\x00" * 4
        assert r.read(4) == b"\x00\x00\x01\x00"

    def test_truncate_reads_eof(self):
        r = FaultyReader(io.BytesIO(b"abcdefgh"), FaultPlan([Truncate(5)]))
        assert r.read(4) == b"abcd"
        assert r.read(4) == b"e"
        assert r.read(4) == b""
        assert r.read(4) == b""

    def test_reset_raises(self):
        r = FaultyReader(io.BytesIO(b"abcdefgh"), FaultPlan([Reset(2)]))
        with pytest.raises(ConnectionResetError):
            r.read(8)

    def test_readinto_applies_faults(self):
        r = FaultyReader(io.BytesIO(b"\x00" * 6), FaultPlan([BitFlip(1, mask=4)]))
        buf = bytearray(6)
        got = r.readinto(buf)
        assert got == 6
        assert bytes(buf) == b"\x00\x04\x00\x00\x00\x00"

    def test_composes_with_bounded_pipe(self):
        pipe = BoundedPipe(capacity=64)
        pipe.write(b"x" * 32)
        pipe.close_write()
        r = FaultyReader(pipe, FaultPlan([BitFlip(10, mask=0x20)]))
        data = b"".join(iter(lambda: r.read(8), b""))
        assert len(data) == 32
        assert data[10] == ord("x") ^ 0x20
        assert data.count(b"x") == 31
