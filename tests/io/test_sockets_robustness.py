"""Robustness tests for the socket transfer path.

Covers the failure contract of :func:`repro.io.run_socket_transfer`:
well-attributed errors, guaranteed teardown (no leaked threads), bounded
waits, connect retries, and resync-mode damage accounting over a real
TCP connection.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.core.recovery import RetryPolicy, retry_call
from repro.data import Compressibility, RepeatingSource, SyntheticCorpus
from repro.io import (
    FaultPlan,
    FaultyWriter,
    ReceiverError,
    Reset,
    Truncate,
    run_socket_transfer,
)
from repro.io.sockets import ReceiverThread


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus(file_size=64 * 1024, seed=31)


def _thread_count() -> int:
    return threading.active_count()


def _settle(baseline: int, deadline: float = 5.0) -> int:
    """Wait for transient threads to exit; return the final count."""
    end = time.monotonic() + deadline
    while threading.active_count() > baseline and time.monotonic() < end:
        time.sleep(0.02)
    return threading.active_count()


class TestTeardown:
    def test_clean_transfer_leaves_no_threads(self, corpus):
        src = RepeatingSource.from_corpus(Compressibility.HIGH, 400_000, corpus)
        before = _thread_count()
        run_socket_transfer(src, static_level=1, block_size=32 * 1024)
        assert _settle(before) == before

    def test_reset_fault_leaves_no_threads(self, corpus):
        before = _thread_count()
        src = RepeatingSource.from_corpus(Compressibility.HIGH, 600_000, corpus)
        with pytest.raises((ConnectionResetError, ReceiverError)):
            run_socket_transfer(
                src,
                static_level=1,
                block_size=32 * 1024,
                wrap_sink=lambda sink: FaultyWriter(
                    sink, FaultPlan([Reset(40_000)])
                ),
            )
        assert _settle(before) == before

    def test_truncation_strict_mode_raises_with_teardown(self, corpus):
        """A mid-frame truncation must fail the strict receiver (it sees
        EOF inside a frame) and still reclaim every resource."""
        before = _thread_count()
        src = RepeatingSource.from_corpus(Compressibility.HIGH, 600_000, corpus)
        with pytest.raises(ReceiverError) as info:
            run_socket_transfer(
                src,
                static_level=1,
                block_size=32 * 1024,
                wrap_sink=lambda sink: FaultyWriter(
                    sink, FaultPlan([Truncate(30_010)])
                ),
            )
        assert info.value.__cause__ is not None
        assert info.value.blocks_received >= 0
        assert _settle(before) == before

    def test_workers_pipeline_teardown_on_fault(self, corpus):
        """The parallel encoder's workers must also be reclaimed when
        the sink dies mid-transfer."""
        before = _thread_count()
        src = RepeatingSource.from_corpus(Compressibility.HIGH, 900_000, corpus)
        with pytest.raises((ConnectionResetError, ReceiverError)):
            run_socket_transfer(
                src,
                static_level=1,
                block_size=32 * 1024,
                workers=2,
                wrap_sink=lambda sink: FaultyWriter(
                    sink, FaultPlan([Reset(50_000)])
                ),
            )
        assert _settle(before) == before


class TestTimeoutsAndRetries:
    def test_accept_timeout_unblocks_receiver(self):
        receiver = ReceiverThread(accept_timeout=0.2)
        receiver.start()
        receiver.join(timeout=5)
        assert not receiver.is_alive()
        assert isinstance(receiver.error, socket.timeout)

    def test_stop_aborts_pending_accept(self):
        """stop() must wake a parked accept immediately, not after
        accept_timeout (30 s here) expires."""
        receiver = ReceiverThread(accept_timeout=30)
        receiver.start()
        time.sleep(0.05)
        t0 = time.monotonic()
        receiver.stop()
        receiver.join(timeout=5)
        assert not receiver.is_alive()
        assert time.monotonic() - t0 < 5
        assert receiver.error is None
        assert receiver.blocks_received == 0

    def test_connect_retries_until_listener_appears(self, corpus):
        """retry_call + RetryPolicy is the connect path's backbone:
        verify it rides out ConnectionRefusedError."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        addr = probe.getsockname()
        probe.close()  # nothing listening on addr now

        listener = {}

        def open_after_two_failures(attempt=[0]):
            attempt[0] += 1
            if attempt[0] >= 3:
                srv = socket.create_server(addr)
                listener["srv"] = srv
            return socket.create_connection(addr, timeout=1)

        sock = retry_call(
            open_after_two_failures,
            policy=RetryPolicy(attempts=5, base=0.01),
            retry_on=(OSError,),
        )
        sock.close()
        listener["srv"].close()

    def test_connect_policy_exhaustion_joins_receiver(self, corpus):
        """Kill the listener before the sender connects: the transfer
        must fail with the connect error, not hang."""
        before = _thread_count()
        src = RepeatingSource.from_corpus(Compressibility.HIGH, 100_000, corpus)

        real_create = socket.create_connection

        def refuse(address, *a, **kw):
            raise ConnectionRefusedError("injected refusal")

        socket.create_connection = refuse
        try:
            with pytest.raises(ConnectionRefusedError):
                run_socket_transfer(
                    src,
                    static_level=1,
                    connect_policy=RetryPolicy(attempts=2, base=0.01),
                    accept_timeout=5,
                )
        finally:
            socket.create_connection = real_create
        assert _settle(before) == before


class TestResyncOverSockets:
    def test_bitflips_skip_bounded_blocks(self, corpus):
        src = RepeatingSource.from_corpus(Compressibility.HIGH, 1_000_000, corpus)
        # Keep fault offsets well inside the compressed wire (HIGH data
        # compresses far below the 1 MB application volume).
        plan = FaultPlan.seeded(5, 25_000, bitflips=2)
        res = run_socket_transfer(
            src,
            static_level=1,
            block_size=32 * 1024,
            resync=True,
            wrap_sink=lambda sink: FaultyWriter(sink, plan),
        )
        assert 1 <= res.blocks_skipped <= 2
        assert res.bytes_skipped > 0
        # Each fault costs at most one block of application bytes.
        assert res.receiver_bytes >= res.app_bytes - 2 * 32 * 1024

    def test_resync_without_faults_is_lossless(self, corpus):
        src = RepeatingSource.from_corpus(Compressibility.MODERATE, 500_000, corpus)
        res = run_socket_transfer(
            src, static_level=1, block_size=32 * 1024, resync=True
        )
        assert res.receiver_bytes == res.app_bytes
        assert res.blocks_skipped == 0
        assert res.bytes_skipped == 0

    def test_truncation_resync_counts_tail(self, corpus):
        src = RepeatingSource.from_corpus(Compressibility.HIGH, 800_000, corpus)
        res = run_socket_transfer(
            src,
            static_level=1,
            block_size=32 * 1024,
            resync=True,
            wrap_sink=lambda sink: FaultyWriter(
                sink, FaultPlan([Truncate(25_000)])
            ),
        )
        # Everything after the cut is lost but the call still returns.
        assert res.receiver_bytes < res.app_bytes
        assert res.receiver_bytes >= 0
