"""Per-flow trace capture: ``--trace-dir`` → v2 replay traces.

A daemon started with ``trace_dir`` writes one ``flow-<id>.jsonl`` per
closed echo flow — the controller's epoch history as a v2 observation
trace.  These tests pin the full loop: capture during a real transfer,
load through :func:`repro.schemes.replay.load_records`, byte-identical
re-serialization, and offline replay of a decision scheme over the
captured observations.
"""

from __future__ import annotations

import io
import time

import pytest

from repro.core.controller import EpochRecord
from repro.data import Compressibility, SyntheticCorpus
from repro.schemes.rate_based import RateBasedScheme
from repro.schemes.replay import (
    dump_trace,
    load_records,
    records_from_epochs,
    replay,
)
from repro.serve import ServeClient, ServeConfig, TransferServer


@pytest.fixture(scope="module")
def payload():
    corpus = SyntheticCorpus(file_size=64 * 1024, seed=37)
    return (
        corpus.payload(Compressibility.HIGH) * 16
        + corpus.payload(Compressibility.MODERATE) * 16
    )  # ~2 MB — tens of ms on loopback, so several 5 ms epochs close


def _settle(predicate, deadline: float = 5.0) -> bool:
    end = time.monotonic() + deadline
    while not predicate():
        if time.monotonic() > end:
            return False
        time.sleep(0.02)
    return True


def _run_echo_flow(trace_dir, payload, **config_kwargs):
    srv = TransferServer(
        ServeConfig(
            port=0,
            max_flows=4,
            codec_workers=2,
            epoch_seconds=0.005,
            trace_dir=str(trace_dir),
            **config_kwargs,
        )
    )
    srv.start()
    try:
        host, port = srv.address
        result = ServeClient(host, port, timeout=60.0).echo(
            payload, collect=False
        )
        assert result.trailer["ok"]
        assert _settle(lambda: srv.flows_completed == 1)
    finally:
        srv.stop(drain=True, timeout=10.0)
    return srv


def _sample_epochs(n: int = 4):
    return [
        EpochRecord(
            epoch=i,
            start=i * 0.25,
            end=(i + 1) * 0.25,
            app_bytes=1000 * (i + 1),
            app_rate=4000.0 * (i + 1),
            level_before=min(i, 3),
            level_after=min(i + 1, 3),
            backoff_snapshot=[0, 0, 0, 0],
        )
        for i in range(n)
    ]


class TestRecordsFromEpochs:
    def test_alignment_and_field_mapping(self):
        observations, decisions = records_from_epochs(
            _sample_epochs(), flow_id=7
        )
        assert len(observations) == len(decisions) == 4
        for i, (obs, dec) in enumerate(zip(observations, decisions)):
            assert obs.flow_id == dec.flow_id == 7
            assert obs.now == (i + 1) * 0.25
            assert obs.epoch_seconds == pytest.approx(0.25)
            assert obs.app_rate == 4000.0 * (i + 1)
            assert obs.level == dec.level_before == min(i, 3)
            assert dec.level_after == min(i + 1, 3)
            assert dec.epoch == i
            # Serve traces carry only what the controller measured.
            assert obs.displayed_cpu_util == 0.0
            assert obs.displayed_bandwidth == 0.0

    def test_empty_epochs(self):
        assert records_from_epochs([]) == ([], [])

    def test_dump_load_dump_byte_identity(self):
        observations, decisions = records_from_epochs(_sample_epochs())
        first = io.StringIO()
        assert dump_trace(observations, first, decisions) == 4

        first.seek(0)
        loaded = list(load_records(first))
        assert [d for _, d in loaded] == decisions

        second = io.StringIO()
        dump_trace(
            [obs for obs, _ in loaded], second, [d for _, d in loaded]
        )
        assert second.getvalue() == first.getvalue()


class TestDaemonTraceCapture:
    def test_trace_written_per_flow_and_replayable(self, tmp_path, payload):
        srv = _run_echo_flow(tmp_path / "traces", payload)
        files = sorted((tmp_path / "traces").glob("flow-*.jsonl"))
        assert len(files) == 1

        with files[0].open() as fp:
            loaded = list(load_records(fp))
        assert loaded, "trace must hold at least one controller epoch"
        for obs, decision in loaded:
            assert decision is not None  # v2: decisions recorded
            assert obs.level == decision.level_before
            assert obs.epoch_seconds > 0.0
            assert obs.app_rate >= 0.0

        # Round trip: re-serializing what was loaded reproduces the
        # file byte-for-byte — the capture path uses the same writer.
        out = io.StringIO()
        dump_trace([obs for obs, _ in loaded], out, [d for _, d in loaded])
        assert out.getvalue() == files[0].read_text()

        # Offline what-if: any scheme replays over the captured trace.
        levels = replay([obs for obs, _ in loaded], RateBasedScheme(n_levels=4))
        assert len(levels) == len(loaded)
        assert all(0 <= lvl <= 3 for lvl in levels)

    def test_static_flow_still_records_open_loop_trace(
        self, tmp_path, payload
    ):
        # A static server level bypasses the controller for the actual
        # re-encode, but the controller keeps learning open-loop — so
        # the trace still answers "what would adaptive have done here".
        _run_echo_flow(tmp_path / "traces", payload, level="MEDIUM")
        (path,) = sorted((tmp_path / "traces").glob("flow-*.jsonl"))
        with path.open() as fp:
            loaded = list(load_records(fp))
        assert loaded
        assert all(0 <= d.level_after <= 3 for _, d in loaded)
        assert all(d.level_before == obs.level for obs, d in loaded)

    def test_no_trace_dir_writes_nothing(self, tmp_path, payload):
        srv = TransferServer(
            ServeConfig(port=0, max_flows=4, codec_workers=2, epoch_seconds=0.02)
        )
        srv.start()
        try:
            host, port = srv.address
            result = ServeClient(host, port, timeout=60.0).echo(
                payload, collect=False
            )
            assert result.trailer["ok"]
        finally:
            srv.stop(drain=True, timeout=10.0)
        assert not list(tmp_path.glob("**/*.jsonl"))

    def test_unwritable_trace_dir_degrades_not_fails(self, tmp_path, payload):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("a file where the trace dir should go")
        srv = _run_echo_flow(blocker, payload)
        # The flow itself succeeded; the write failure was suppressed
        # into accounted telemetry, not a crash or a failed flow.
        assert srv.flows_completed == 1
        assert srv.flows_failed == 0
        assert srv.internal_error_sites.get("trace-write", 0) >= 1
