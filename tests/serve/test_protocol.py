"""Unit tests for the serve wire protocol (hello/control framing)."""

from __future__ import annotations

import struct

import pytest

from repro.serve.protocol import (
    CONTROL,
    CONTROL_MAGIC,
    HELLO,
    HELLO_MAGIC,
    MAX_CONTROL_LEN,
    MODE_ECHO,
    MODE_SINK,
    PROTOCOL_VERSION,
    ProtocolError,
    encode_control,
    encode_hello,
    parse_control,
    parse_hello,
)


class TestHello:
    def test_roundtrip_sink(self):
        frame = encode_hello(MODE_SINK, {"block_size": 4096})
        hello, consumed = parse_hello(frame)
        assert consumed == len(frame)
        assert hello.mode == MODE_SINK
        assert hello.params == {"block_size": 4096}

    def test_roundtrip_echo_no_params(self):
        frame = encode_hello(MODE_ECHO)
        hello, consumed = parse_hello(frame)
        assert hello.mode == MODE_ECHO
        assert hello.params == {}
        assert consumed == len(frame)

    def test_incremental_byte_by_byte(self):
        frame = encode_hello(MODE_ECHO, {"level": "HEAVY"})
        for cut in range(len(frame)):
            assert parse_hello(frame[:cut]) is None
        hello, consumed = parse_hello(frame)
        assert hello.params["level"] == "HEAVY"
        assert consumed == len(frame)

    def test_trailing_bytes_not_consumed(self):
        frame = encode_hello(MODE_SINK)
        hello, consumed = parse_hello(frame + b"AB extra block bytes")
        assert consumed == len(frame)

    def test_unknown_mode_rejected_at_encode(self):
        with pytest.raises(ValueError):
            encode_hello("upload")

    def test_bad_magic_fails_fast_even_partial(self):
        with pytest.raises(ProtocolError):
            parse_hello(b"XX")  # 2 bytes of garbage: never a valid prefix

    def test_bad_magic_full_header(self):
        frame = bytearray(encode_hello(MODE_SINK))
        frame[0] = 0x58
        with pytest.raises(ProtocolError):
            parse_hello(frame)

    def test_bad_version(self):
        frame = HELLO.pack(HELLO_MAGIC, PROTOCOL_VERSION + 1, 1, 0)
        with pytest.raises(ProtocolError):
            parse_hello(frame)

    def test_unknown_mode_id(self):
        frame = HELLO.pack(HELLO_MAGIC, PROTOCOL_VERSION, 99, 0)
        with pytest.raises(ProtocolError):
            parse_hello(frame)

    def test_non_object_params(self):
        body = b"[1,2]"
        frame = HELLO.pack(HELLO_MAGIC, PROTOCOL_VERSION, 1, len(body)) + body
        with pytest.raises(ProtocolError):
            parse_hello(frame)

    def test_undecodable_params(self):
        body = b"{not json"
        frame = HELLO.pack(HELLO_MAGIC, PROTOCOL_VERSION, 1, len(body)) + body
        with pytest.raises(ProtocolError):
            parse_hello(frame)


class TestControl:
    def test_roundtrip(self):
        body = {"ok": True, "flow_id": 7, "crc32": 123456789}
        frame = encode_control(body)
        parsed, consumed = parse_control(frame)
        assert parsed == body
        assert consumed == len(frame)

    def test_incremental(self):
        frame = encode_control({"ok": False, "error": "max-flows"})
        for cut in range(len(frame)):
            assert parse_control(frame[:cut]) is None
        parsed, _ = parse_control(frame)
        assert parsed["error"] == "max-flows"

    def test_bad_magic(self):
        with pytest.raises(ProtocolError):
            parse_control(b"JUNKJUNKJUNK")

    def test_partial_bad_prefix_fails_fast(self):
        with pytest.raises(ProtocolError):
            parse_control(b"RX")

    def test_oversized_length_rejected_before_body(self):
        frame = CONTROL.pack(CONTROL_MAGIC, MAX_CONTROL_LEN + 1)
        with pytest.raises(ProtocolError):
            parse_control(frame)

    def test_partial_magic_prefix_waits(self):
        # A correct prefix shorter than the magic is "need more bytes".
        assert parse_control(b"RC") is None
        assert parse_hello(b"RS") is None
