"""Fleet control plane wired through the transfer service.

Covers the serve-side actuation path of :mod:`repro.control`: config
validation, the per-flow ``apply_control`` knobs (level override,
decode-window weight, in-band ``{"ctl": ...}`` announcement), the
server's loop-less ``_control_pass`` → policy → actuator chain under a
fake clock, and one end-to-end run where a greedy policy pins a
provably-incompressible live flow mid-stream.
"""

from __future__ import annotations

import os
import selectors
import socket
import threading
import time

import pytest

from repro.core.buffers import BufferPool
from repro.core.controller import AdaptiveController
from repro.core.levels import default_level_table
from repro.core.pipeline import CodecThreadPool
from repro.serve import ServeClient, ServeConfig, TransferServer
from repro.serve.flow import Flow, FlowState
from repro.serve.protocol import parse_control


class TestConfig:
    def test_bad_control_interval_rejected(self):
        with pytest.raises(ValueError, match="control_interval"):
            ServeConfig(control_interval=0.0)

    def test_unknown_policy_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown policy"):
            TransferServer(ServeConfig(port=0, policy="no-such-policy"))

    def test_no_policy_means_no_controller(self):
        srv = TransferServer(ServeConfig(port=0))
        try:
            assert srv.controller is None
        finally:
            srv._teardown(listener_open=True)


class TestFlowApplyControl:
    @pytest.fixture()
    def flow(self):
        pool = CodecThreadPool(1, name="test-ctl")
        a, b = socket.socketpair()
        fl = Flow(
            7,
            a,
            peer="test",
            levels=default_level_table(),
            codec_pool=pool,
            buffer_pool=BufferPool(),
            notify=lambda f: None,
            max_inflight_blocks=4,
            clock=lambda: 0.0,
        )
        fl.state = FlowState.STREAMING
        fl.mode = "echo"
        fl.controller = AdaptiveController(n_levels=4, clock_start=0.0)
        yield fl
        a.close()
        b.close()
        pool.close()

    def test_pin_and_weight_actuate_and_announce(self, flow):
        assert flow.apply_control(0, 0.25) is True
        assert flow.echo_level == 0
        assert flow._max_inflight == 1  # 4 * 0.25
        # The change was announced in-band as a ctl control frame.
        assert len(flow._out) == 1
        body, _ = parse_control(bytes(flow._out[0][0]))
        assert body == {"ctl": "rebalance", "level": 0, "weight": 0.25}

    def test_idempotent_reapply_queues_nothing(self, flow):
        flow.apply_control(2, 2.0)
        queued = len(flow._out)
        assert flow.apply_control(2, 2.0) is False
        assert len(flow._out) == queued

    def test_release_restores_adaptive_and_window(self, flow):
        flow.apply_control(0, 0.25)
        assert flow.apply_control(None, 1.0) is True
        assert flow._max_inflight == 4
        # Override cleared: the per-flow scheme decides again.
        assert flow.controller._override is None

    def test_no_announcement_outside_streaming(self, flow):
        flow.state = FlowState.DRAINING
        assert flow.apply_control(0, 0.5) is True
        assert not flow._out  # actuated silently; trailer stays last

    def test_sample_rates_windows(self, flow):
        assert flow.sample_rates(0.1, min_interval=0.25) is None
        flow.app_bytes = 1_000_000
        flow.wire_bytes_in = 950_000
        rate, ratio = flow.sample_rates(0.5, min_interval=0.25)
        assert rate == pytest.approx(2_000_000.0)
        assert ratio == pytest.approx(0.95)
        # Idle window: no app bytes moved, ratio is unknowable.
        rate, ratio = flow.sample_rates(1.0, min_interval=0.25)
        assert rate == 0.0
        assert ratio is None


class TestServerControlPass:
    def test_greedy_pins_incompressible_flow(self):
        now = [0.0]
        srv = TransferServer(
            ServeConfig(
                port=0,
                policy="greedy-throughput",
                control_interval=0.5,
                codec_workers=2,
            ),
            clock=lambda: now[0],
        )
        a, b = socket.socketpair()
        try:
            srv._selector = selectors.DefaultSelector()
            flow = Flow(
                1,
                a,
                peer="test",
                levels=default_level_table(),
                codec_pool=srv._executors[0],
                buffer_pool=srv.buffer_pool,
                notify=lambda f: None,
                clock=lambda: now[0],
            )
            flow.state = FlowState.STREAMING
            flow.mode = "echo"
            flow.controller = AdaptiveController(n_levels=4, clock_start=0.0)
            flow.controller.set_level_override(2)  # "currently compressing"
            srv._flows[1] = flow
            srv._masks[1] = 0
            srv._announce(flow)

            # One epoch's worth of traffic that compressed to nothing.
            now[0] = 1.0
            flow.app_bytes = 4_000_000
            flow.wire_bytes_in = 4_100_000
            srv._control_pass()

            assert srv.controller.rebalances == 1
            asg = srv.controller.assignment_for(1)
            assert asg.level == 0 and asg.weight < 1.0
            assert flow.echo_level == 0
            assert flow._max_inflight == 1
            # Interval gate: an immediate second pass does not re-run.
            srv._control_pass()
            assert srv.controller.rebalances == 1
        finally:
            srv._teardown(listener_open=True)
            b.close()

    def test_closed_flow_leaves_controller_state(self):
        srv = TransferServer(
            ServeConfig(port=0, policy="fair-share", codec_workers=2)
        )
        a, b = socket.socketpair()
        try:
            srv._selector = selectors.DefaultSelector()
            flow = Flow(
                1,
                a,
                peer="test",
                levels=default_level_table(),
                codec_pool=srv._executors[0],
                buffer_pool=srv.buffer_pool,
                notify=lambda f: None,
            )
            flow.state = FlowState.STREAMING
            flow.mode = "sink"
            srv._flows[1] = flow
            srv._masks[1] = 0
            srv._announce(flow)
            assert srv.controller.flow_count == 1
            flow.state = FlowState.CLOSED
            srv._close_flow(flow)
            assert srv.controller.flow_count == 0
        finally:
            srv._teardown(listener_open=True)
            b.close()


class TestEndToEnd:
    def test_greedy_rebalances_live_incompressible_flow(self):
        """A live NO-level random-data echo flow gets pinned mid-stream.

        The client streams incompressible chunks until the server's
        fleet controller demonstrably pinned the flow (observed via the
        public assignment API), then finishes; the pushed ``ctl`` frame
        must have reached the client before the trailer.
        """
        srv = TransferServer(
            ServeConfig(
                port=0,
                policy="greedy-throughput",
                control_interval=0.2,
                epoch_seconds=0.1,
                codec_workers=2,
            )
        )
        srv.start()
        stop = threading.Event()

        def chunks():
            for _ in range(2000):
                yield os.urandom(64 * 1024)
                if stop.is_set():
                    return
                time.sleep(0.005)

        out = {}

        def run_client():
            host, port = srv.address
            out["result"] = ServeClient(host, port, timeout=30.0).echo(
                chunks(), level=0, collect=False
            )

        worker = threading.Thread(target=run_client)
        worker.start()
        try:
            deadline = time.monotonic() + 20.0
            pinned = False
            while time.monotonic() < deadline:
                asg = srv.controller.assignment_for(1)
                if asg.level == 0 and asg.weight < 1.0:
                    pinned = True
                    break
                time.sleep(0.02)
            stop.set()
            worker.join(timeout=30.0)
            assert pinned, "controller never pinned the incompressible flow"
            result = out["result"]
            assert result.trailer["ok"] is True
            rebalances = [c for c in result.controls if c.get("ctl") == "rebalance"]
            assert rebalances, "no in-band rebalance frame reached the client"
            assert rebalances[-1]["level"] == 0
        finally:
            stop.set()
            srv.stop(drain=False)
