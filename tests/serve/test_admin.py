"""Admin endpoint e2e: /metrics, /healthz, /flows, POST /reload.

The daemon under test is a real :class:`TransferServer` with real
client connections; every scrape goes over HTTP through the
:class:`AdminServer` on its own port.  The /metrics payload is
validated with the strict exposition parser from the telemetry tests —
if a hostile peer string or a NaN gauge could corrupt the exposition,
these tests fail.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.data import Compressibility, SyntheticCorpus
from repro.serve import (
    AdminServer,
    MODE_ECHO,
    ServeClient,
    ServeConfig,
    TransferServer,
    encode_hello,
)
from repro.telemetry import instrumented

from tests.telemetry.test_exporters import parse_exposition


@pytest.fixture(scope="module")
def payload():
    corpus = SyntheticCorpus(file_size=64 * 1024, seed=29)
    return (
        corpus.payload(Compressibility.HIGH) * 8
        + corpus.payload(Compressibility.MODERATE) * 8
    )  # ~1 MB


@pytest.fixture()
def server():
    srv = TransferServer(
        ServeConfig(port=0, max_flows=32, codec_workers=2, epoch_seconds=0.05)
    )
    srv.start()
    yield srv
    srv.stop(drain=False)


@pytest.fixture()
def admin(server):
    with AdminServer(server, port=0) as endpoint:
        yield endpoint


def _settle(predicate, deadline: float = 5.0) -> bool:
    end = time.monotonic() + deadline
    while not predicate():
        if time.monotonic() > end:
            return False
        time.sleep(0.02)
    return True


def _request(admin, path: str, data: bytes = None):
    """HTTP request → (status, body bytes); non-2xx does not raise."""
    host, port = admin.address
    url = f"http://{host}:{port}{path}"
    req = urllib.request.Request(url, data=data)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=10.0) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _open_raw_flow(server) -> socket.socket:
    """A connected socket that completed the hello, then goes quiet.

    Keeps a STREAMING echo flow open for as long as the socket lives —
    the deterministic way to scrape a daemon with live flows.
    """
    host, port = server.address
    sock = socket.create_connection((host, port), timeout=10.0)
    sock.sendall(encode_hello(MODE_ECHO, {}))
    return sock


class TestMetricsEndpoint:
    def test_scrape_while_16_flows_stream(self, server, admin):
        socks = [_open_raw_flow(server) for _ in range(16)]
        try:
            assert _settle(lambda: server.active_flows == 16)
            status, body = _request(admin, "/metrics")
            assert status == 200
            text = body.decode("utf-8")
            samples = parse_exposition(text)  # strict: raises on bad lines
            by_name = {
                name: value for name, labels, value in samples if not labels
            }
            assert by_name["repro_serve_up"] == 1.0
            assert by_name["repro_serve_active_flows"] == 16.0
            assert by_name["repro_serve_flows_accepted_total"] == 16.0
            flow_series = [
                (labels["flow_id"], labels["mode"])
                for name, labels, value in samples
                if name == "repro_serve_flow_level"
            ]
            assert len(flow_series) == 16
            assert all(mode == "echo" for _, mode in flow_series)
            assert len({fid for fid, _ in flow_series}) == 16
        finally:
            for sock in socks:
                sock.close()
        assert _settle(lambda: server.active_flows == 0)

    def test_registry_metrics_included_under_load(
        self, server, admin, payload
    ):
        with instrumented() as session:
            admin.registry = session.registry
            host, port = server.address
            result = ServeClient(host, port, timeout=30.0).echo(
                payload, collect=False
            )
            assert result.trailer["ok"]
            assert _settle(lambda: server.flows_completed == 1)
            status, body = _request(admin, "/metrics")
        assert status == 200
        samples = parse_exposition(body.decode("utf-8"))
        names = {name for name, _, _ in samples}
        # The span bridge feeds the decode-latency histogram the SLO
        # gate reads; a scrape must expose it.
        assert "span_serve_decode_seconds_count" in names
        assert "repro_serve_flows_completed_total" in names

    def test_hostile_peer_label_cannot_corrupt_exposition(
        self, server, admin, monkeypatch
    ):
        evil = 'evil"peer\nwith\\escapes'
        snapshot = [
            {
                "flow_id": 1,
                "peer": evil,
                "mode": "echo",
                "app_rate": 1.5,
                "observed_ratio": None,  # no window yet → series omitted
                "level": 2,
                "worker_weight": 1.0,
                "decode_in_flight": 0,
                "encode_in_flight": 0,
                "write_queue_bytes": 0,
            }
        ]
        monkeypatch.setattr(server, "flows_snapshot", lambda: snapshot)
        status, body = _request(admin, "/metrics")
        assert status == 200
        samples = parse_exposition(body.decode("utf-8"))
        peers = {
            labels["peer"]
            for name, labels, _ in samples
            if name.startswith("repro_serve_flow_")
        }
        assert peers == {evil}  # escaped on the wire, round-trips intact
        assert not any(
            name == "repro_serve_flow_observed_ratio" for name, _, _ in samples
        )


class TestHealthz:
    def test_ready_then_flips_during_drain(self, server, admin):
        status, body = _request(admin, "/healthz")
        assert status == 200
        detail = json.loads(body)
        assert detail["ready"] and detail["live"] and not detail["draining"]

        sock = _open_raw_flow(server)  # keeps the drain pending
        try:
            assert _settle(lambda: server.active_flows == 1)
            server.request_drain()
            assert _settle(
                lambda: _request(admin, "/healthz")[0] == 503, deadline=5.0
            )
            status, body = _request(admin, "/healthz")
            detail = json.loads(body)
            assert detail["draining"] and not detail["ready"]
            assert detail["live"]  # still serving the last flow
            assert detail["active_flows"] == 1
        finally:
            sock.close()
        assert _settle(lambda: _request(admin, "/healthz")[0] == 503)
        detail = json.loads(_request(admin, "/healthz")[1])
        assert not detail["live"]  # loop exited after the drain emptied

    def test_healthz_carries_internal_error_tally(self, server, admin):
        server._internal_error("test-site", OSError("boom"))
        server._internal_error("test-site", OSError("boom again"))
        status, body = _request(admin, "/healthz")
        assert status == 200  # suppressed errors degrade, not kill
        detail = json.loads(body)
        assert detail["internal_errors"] == 2
        assert detail["internal_error_sites"] == {"test-site": 2}
        samples = parse_exposition(
            _request(admin, "/metrics")[1].decode("utf-8")
        )
        by_site = {
            labels["site"]: value
            for name, labels, value in samples
            if name == "repro_serve_internal_errors"
        }
        assert by_site == {"test-site": 2.0}


class TestFlowsEndpoint:
    def test_snapshot_shape(self, server, admin):
        sock = _open_raw_flow(server)
        try:
            assert _settle(lambda: server.active_flows == 1)
            status, body = _request(admin, "/flows")
            assert status == 200
            doc = json.loads(body)
            assert doc["count"] == 1
            (flow,) = doc["flows"]
            assert flow["mode"] == "echo"
            assert flow["state"] == "streaming"
            assert flow["adaptive"] is True
            assert flow["age_seconds"] >= 0.0
        finally:
            sock.close()

    def test_status_and_404(self, server, admin):
        status, body = _request(admin, "/status")
        assert status == 200
        doc = json.loads(body)
        assert doc["active_flows"] == 0
        assert doc["uptime_seconds"] > 0.0
        assert doc["reloads"] == 0
        assert _request(admin, "/nope")[0] == 404
        assert _request(admin, "/nope", data=b"{}")[0] == 404


class TestReloadEndpoint:
    def test_apply_level_change(self, server, admin):
        status, body = _request(
            admin, "/reload", data=json.dumps({"level": "HEAVY"}).encode()
        )
        assert status == 200
        doc = json.loads(body)
        assert doc["ok"] and doc["queued"]["level"] == "HEAVY"
        assert _settle(lambda: server.reloads == 1)
        assert server.config.level == "HEAVY"
        assert server.last_reload["changed"] == ("level",)

    def test_invalid_reload_rejected_with_400(self, server, admin):
        for bad in (
            {"level": "gzip-1"},
            {"policy": "no-such-policy"},
            {"control_interval": 0},
            {"max_flows": "many"},
            {"unknown_key": 1},
        ):
            status, body = _request(
                admin, "/reload", data=json.dumps(bad).encode()
            )
            assert status == 400, bad
            assert not json.loads(body)["ok"]
        assert _request(admin, "/reload", data=b"not json[")[0] == 400
        assert _request(admin, "/reload", data=b'["list"]')[0] == 400
        # Empty body without a --config file to re-read: nothing to do.
        assert _request(admin, "/reload", data=b"")[0] == 400
        time.sleep(0.1)
        assert server.reloads == 0  # nothing was applied

    def test_empty_body_rereads_config_source(self, server):
        source_calls = []

        def source():
            source_calls.append(1)
            return {"idle_timeout": 12.5}

        with AdminServer(server, port=0, config_source=source) as endpoint:
            status, body = _request(endpoint, "/reload", data=b"")
            assert status == 200
            assert json.loads(body)["queued"] == {"idle_timeout": 12.5}
            assert source_calls == [1]
            assert _settle(lambda: server.config.idle_timeout == 12.5)

    def test_config_source_error_is_a_400(self, server):
        def source():
            raise OSError("config file vanished")

        with AdminServer(server, port=0, config_source=source) as endpoint:
            status, body = _request(endpoint, "/reload", data=b"")
            assert status == 400
            assert "vanished" in json.loads(body)["error"]


class TestConcurrentScrapes:
    def test_parallel_scrapes_dont_interfere(self, server, admin):
        socks = [_open_raw_flow(server) for _ in range(4)]
        errors = []

        def scrape():
            try:
                for _ in range(5):
                    status, body = _request(admin, "/metrics")
                    assert status == 200
                    parse_exposition(body.decode("utf-8"))
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        try:
            assert _settle(lambda: server.active_flows == 4)
            threads = [threading.Thread(target=scrape) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=20.0)
            assert errors == []
        finally:
            for sock in socks:
                sock.close()
