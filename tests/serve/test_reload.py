"""Hot config reload: validation, live-flow retune, zero-drop, SIGHUP.

The reload contract under test (``TransferServer.request_reload``):

* validation is all-or-nothing — a bad key or value raises before
  anything is enqueued, so a failed reload leaves the daemon untouched;
* the loop thread applies changes between passes — live flows are
  retuned in place and **no connection is dropped**;
* flows whose client pinned a level in the hello keep it — a reload
  only moves server-chosen levels;
* ``SIGHUP`` on the CLI daemon re-reads ``--config`` (subprocess test).
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro.core.levels import default_level_table
from repro.data import Compressibility, SyntheticCorpus
from repro.serve import (
    FlowState,
    MODE_ECHO,
    RELOADABLE_KEYS,
    ServeClient,
    ServeConfig,
    TransferServer,
    encode_hello,
)
from repro.telemetry.events import BUS, ConfigReloaded
from repro.telemetry.exporters import InMemoryExporter

LEVELS = default_level_table()


@pytest.fixture(scope="module")
def payload():
    corpus = SyntheticCorpus(file_size=64 * 1024, seed=31)
    return (
        corpus.payload(Compressibility.HIGH) * 8
        + corpus.payload(Compressibility.MODERATE) * 4
    )  # ~768 KB


@pytest.fixture()
def server():
    srv = TransferServer(
        ServeConfig(port=0, max_flows=32, codec_workers=2, epoch_seconds=0.05)
    )
    srv.start()
    yield srv
    srv.stop(drain=False)


def _settle(predicate, deadline: float = 5.0) -> bool:
    end = time.monotonic() + deadline
    while not predicate():
        if time.monotonic() > end:
            return False
        time.sleep(0.02)
    return True


def _open_raw_flow(server, params=None) -> socket.socket:
    host, port = server.address
    sock = socket.create_connection((host, port), timeout=10.0)
    sock.sendall(encode_hello(MODE_ECHO, params or {}))
    return sock


def _streaming(server) -> int:
    return sum(
        1
        for flow in list(server._flows.values())
        if flow.state is FlowState.STREAMING
    )


def _only_flow(server):
    return next(iter(server._flows.values()))


class TestValidation:
    def test_unknown_key_rejected_before_enqueue(self, server):
        with pytest.raises(ValueError, match="not a reloadable key"):
            server.request_reload({"level": "HEAVY", "port": 9999})
        time.sleep(0.1)
        assert server.reloads == 0
        assert server.config.level is None  # the valid half not applied

    @pytest.mark.parametrize(
        "changes,match",
        [
            ({"level": "gzip-1"}, "unknown level"),
            ({"level": 3}, "level must be a name"),
            ({"policy": "round-robin"}, "unknown policy"),
            ({"policy": 7}, "policy must be a name"),
            ({"control_interval": 0.0}, "must be positive"),
            ({"control_interval": "soon"}, None),
            ({"idle_timeout": -1}, "must be >= 0"),
            ({"max_flows": 0}, "must be >= 1"),
            ({"max_flows": True}, "must be an integer"),
            ({"max_queued_jobs": -5}, "must be >= 0"),
            ({"max_queued_jobs": 2.5}, "must be an integer"),
        ],
    )
    def test_bad_values_rejected(self, server, changes, match):
        with pytest.raises(ValueError, match=match):
            server.request_reload(changes)
        assert server.reloads == 0

    def test_normalized_change_set_returned(self, server):
        normalized = server.request_reload(
            {"level": "adaptive", "control_interval": 2, "max_flows": 8}
        )
        assert normalized == {
            "level": "adaptive",
            "control_interval": 2.0,
            "max_flows": 8,
        }
        assert set(normalized) <= set(RELOADABLE_KEYS)

    def test_empty_change_set_is_a_noop(self, server):
        assert server.request_reload({}) == {}
        time.sleep(0.1)
        assert server.reloads == 0


class TestLiveFlowRetune:
    def test_level_reload_retunes_adaptive_flow(self, server):
        sock = _open_raw_flow(server)
        try:
            assert _settle(lambda: _streaming(server) == 1)
            flow = _only_flow(server)
            assert flow.controller.level_override is None  # adaptive
            server.request_reload({"level": "NO"})
            assert _settle(lambda: server.reloads == 1)
            assert flow.controller.level_override == LEVELS.index_of("NO")
            assert flow.echo_level == LEVELS.index_of("NO")
            assert server.last_reload["changed"] == ("level",)
            assert server.last_reload["flows_updated"] == 1

            # And back to adaptive: the override lifts.
            server.request_reload({"level": None})
            assert _settle(lambda: server.reloads == 2)
            assert flow.controller.level_override is None
            assert server.config.level is None
        finally:
            sock.close()

    def test_client_pinned_flow_keeps_its_level(self, server):
        sock = _open_raw_flow(server, params={"level": "HEAVY"})
        try:
            assert _settle(lambda: _streaming(server) == 1)
            flow = _only_flow(server)
            heavy = LEVELS.index_of("HEAVY")
            assert flow.echo_level == heavy
            server.request_reload({"level": "NO"})
            assert _settle(lambda: server.reloads == 1)
            assert flow.echo_level == heavy  # pinned by the client's hello
            assert server.last_reload["flows_updated"] == 0
            # New defaults still apply to the *next* flow.
            assert server.config.level == "NO"
        finally:
            sock.close()

    def test_reload_to_same_level_counts_no_flows(self, server):
        sock = _open_raw_flow(server)
        try:
            assert _settle(lambda: _streaming(server) == 1)
            server.request_reload({"level": "MEDIUM"})
            assert _settle(lambda: server.reloads == 1)
            assert server.last_reload["flows_updated"] == 1
            server.request_reload({"level": "MEDIUM"})
            assert _settle(lambda: server.reloads == 2)
            # The request is processed, but nothing actually changed.
            assert server.last_reload["changed"] == ()
            assert server.last_reload["flows_updated"] == 0
        finally:
            sock.close()

    def test_policy_swap_attaches_and_detaches_controller(self, server):
        sock = _open_raw_flow(server)
        try:
            assert _settle(lambda: _streaming(server) == 1)
            assert server.controller is None
            server.request_reload({"policy": "fair-share"})
            assert _settle(lambda: server.controller is not None)
            assert server.controller.policy.name == "fair-share"
            server.request_reload({"policy": None})
            assert _settle(lambda: server.controller is None)
            flow = _only_flow(server)
            assert flow.control_weight == 1.0  # returned to self-rule
        finally:
            sock.close()

    def test_reload_publishes_config_reloaded_event(self, server):
        exporter = InMemoryExporter().attach(BUS)  # subscribing activates
        try:
            server.request_reload({"idle_timeout": 45.0})
            assert _settle(lambda: server.reloads == 1)
            assert _settle(lambda: len(exporter.of_type(ConfigReloaded)) == 1)
            (event,) = exporter.of_type(ConfigReloaded)
            assert event.changed == ("idle_timeout",)
            assert event.reloads == 1
        finally:
            exporter.detach()


class TestZeroDrop:
    def test_reloads_under_live_traffic_drop_nothing(self, server, payload):
        """Three reloads while 8 echo flows stream: all verify, none drop."""
        host, port = server.address
        results, errors = [], []

        def run_flow():
            try:
                client = ServeClient(host, port, timeout=60.0)
                results.append(client.echo(payload * 2, collect=False))
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=run_flow) for _ in range(8)]
        for t in threads:
            t.start()
        assert _settle(lambda: server.active_flows >= 4)
        for level in ("NO", "HEAVY", None):
            server.request_reload({"level": level})
            time.sleep(0.05)
        for t in threads:
            t.join(timeout=120.0)
        assert errors == []
        assert len(results) == 8
        assert all(r.trailer["ok"] for r in results)
        assert _settle(lambda: server.flows_completed == 8)
        assert server.flows_failed == 0
        assert _settle(lambda: server.reloads == 3)


class TestSighup:
    def test_sighup_rereads_config_file(self, tmp_path):
        """CLI daemon + --config: SIGHUP applies the file, drops nothing."""
        config_path = tmp_path / "serve.json"
        config_path.write_text(json.dumps({"level": "NO"}))
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.io.cli", "serve",
                "--port", "0", "--workers", "2",
                "--config", str(config_path),
                "--admin-port", "0",
            ],
            stdout=subprocess.PIPE,
            text=True,
            env=os.environ.copy(),
        )
        try:
            banner = proc.stdout.readline().strip()
            assert re.match(r"serving on \S+:\d+$", banner), banner
            admin_banner = proc.stdout.readline().strip()
            match = re.match(r"admin on (\S+):(\d+)$", admin_banner)
            assert match, f"unexpected banner {admin_banner!r}"
            admin = f"http://{match.group(1)}:{match.group(2)}"

            def status():
                with urllib.request.urlopen(
                    admin + "/status", timeout=10.0
                ) as resp:
                    return json.loads(resp.read())

            assert status()["level"] == "NO"
            config_path.write_text(
                json.dumps({"level": "HEAVY", "idle_timeout": 99.0})
            )
            proc.send_signal(signal.SIGHUP)
            assert _settle(lambda: status()["reloads"] == 1, deadline=10.0)
            doc = status()
            assert doc["level"] == "HEAVY"
            assert doc["idle_timeout"] == 99.0

            # A bad rewrite must not kill the daemon or apply anything.
            config_path.write_text(json.dumps({"level": "bogus"}))
            proc.send_signal(signal.SIGHUP)
            time.sleep(0.3)
            doc = status()
            assert doc["reloads"] == 1
            assert doc["level"] == "HEAVY"

            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30.0)
            assert proc.returncode == 0
            assert "drained: 0 completed" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)
