"""Integration tests for the repro.serve transfer service.

One daemon, many concurrent adaptive flows: byte identity per flow,
admission control, graceful drain, shared codec/buffer pools, per-flow
telemetry and no leaked threads or file descriptors.
"""

from __future__ import annotations

import os
import socket
import threading
import time

import pytest

from repro.data import Compressibility, SyntheticCorpus
from repro.serve import (
    FlowRejectedError,
    ServeClient,
    ServeConfig,
    TransferServer,
)
from repro.serve.protocol import encode_hello, parse_control
from repro.core import procpool
from repro.core.pipeline import CodecThreadPool
from repro.core.procpool import process_backend_available
from repro.telemetry.events import (
    BUS,
    BufferPoolStats,
    FlowAccepted,
    FlowClosed,
    FlowRejected,
    PipelineQueueDepth,
)


@pytest.fixture(scope="module")
def payload():
    corpus = SyntheticCorpus(file_size=64 * 1024, seed=23)
    return (
        corpus.payload(Compressibility.HIGH) * 4
        + corpus.payload(Compressibility.LOW) * 2
        + corpus.payload(Compressibility.MODERATE) * 4
    )  # ~640 KB of mixed compressibility


@pytest.fixture()
def server():
    srv = TransferServer(ServeConfig(port=0, max_flows=32, codec_workers=2))
    srv.start()
    yield srv
    srv.stop(drain=False)


def _client(server, **kwargs) -> ServeClient:
    host, port = server.address
    return ServeClient(host, port, timeout=30.0, **kwargs)


def _settle(predicate, deadline: float = 5.0) -> bool:
    end = time.monotonic() + deadline
    while not predicate():
        if time.monotonic() > end:
            return False
        time.sleep(0.02)
    return True


class TestSingleFlow:
    def test_upload_identity_via_trailer_crc(self, server, payload):
        result = _client(server).upload(payload)
        assert result.trailer["ok"] is True
        assert result.trailer["app_bytes"] == len(payload)
        assert result.trailer["blocks_in"] > 1
        assert result.app_bytes == len(payload)

    def test_upload_static_level_compresses(self, server, payload):
        result = _client(server).upload(payload, level="MEDIUM")
        assert result.wire_bytes_sent < len(payload)

    def test_empty_upload(self, server):
        result = _client(server).upload(b"")
        assert result.trailer["app_bytes"] == 0
        assert result.trailer["crc32"] == 0

    def test_echo_roundtrip_byte_identity(self, server, payload):
        result = _client(server).echo(payload, server_level="LIGHT")
        assert result.data == payload
        assert result.trailer["blocks_out"] == result.trailer["blocks_in"]

    def test_echo_adaptive_server_level(self, server, payload):
        result = _client(server).echo(payload)
        assert result.data == payload

    def test_parallel_client_writer(self, server, payload):
        result = _client(server).upload(payload, level="HEAVY", workers=3)
        assert result.trailer["app_bytes"] == len(payload)

    def test_sequential_flows_reuse_one_daemon(self, server, payload):
        client = _client(server)
        for _ in range(3):
            assert client.upload(payload, level="LIGHT").trailer["ok"]
        assert _settle(lambda: server.flows_completed >= 3)


class TestConcurrency:
    N = 16

    def test_16_concurrent_flows_byte_identical(self, server, payload):
        results, errors = [], []
        threads_during = []

        def run(i):
            try:
                client = _client(server)
                if i % 2:
                    results.append(client.upload(payload))
                else:
                    r = client.echo(payload)
                    assert r.data == payload, f"flow {i}: echoed bytes differ"
                    results.append(r)
                threads_during.append(threading.active_count())
            except Exception as exc:  # noqa: BLE001 - surfaced in assert
                errors.append((i, repr(exc)))

        workers = [threading.Thread(target=run, args=(i,)) for i in range(self.N)]
        for t in workers:
            t.start()
        for t in workers:
            t.join(timeout=60.0)
        assert not errors, errors
        assert len(results) == self.N
        for r in results:
            assert r.trailer["app_bytes"] == len(payload)

    def test_flows_share_one_codec_pool_and_buffer_pool(self, server, payload):
        client_threads = [
            threading.Thread(target=lambda: _client(server).upload(payload))
            for _ in range(6)
        ]
        for t in client_threads:
            t.start()
        for t in client_threads:
            t.join(timeout=60.0)
        pool_stats = server.codec_pool.stats()
        buf_stats = server.buffer_pool.stats()
        # Every flow's decode jobs ran on the one shared pool...
        assert pool_stats["workers"] == 2
        assert pool_stats["jobs_submitted"] >= 6
        assert pool_stats["job_failures"] == 0
        # ...and every payload buffer came from the one shared slab pool.
        assert buf_stats["hits"] + buf_stats["misses"] >= 6
        assert buf_stats["hits"] > 0  # slabs actually got reused across flows

    def test_no_thread_per_flow(self, server, payload):
        # Loop thread + 2 codec workers, regardless of flow count.
        before = threading.active_count()
        barrier = threading.Barrier(8)

        def run():
            barrier.wait(timeout=30.0)
            _client(server).upload(payload)

        workers = [threading.Thread(target=run) for _ in range(8)]
        for t in workers:
            t.start()
        for t in workers:
            t.join(timeout=60.0)
        # The 8 client threads are ours; the server side added none.
        assert threading.active_count() <= before
        assert _settle(lambda: server.flows_completed >= 8)


class TestAdmission:
    def test_rejects_over_max_flows(self, payload):
        srv = TransferServer(ServeConfig(port=0, max_flows=2, codec_workers=2)).start()
        try:
            host, port = srv.address
            holders = []
            for _ in range(2):
                s = socket.create_connection((host, port), timeout=5.0)
                s.sendall(encode_hello("sink", {}))
                holders.append(s)
            assert _settle(lambda: srv.active_flows == 2)
            with pytest.raises(FlowRejectedError, match="max-flows"):
                ServeClient(host, port, timeout=5.0).upload(b"x")
            assert srv.flows_rejected == 1
            for s in holders:
                s.close()
            # Capacity frees up once the holders disappear.
            assert _settle(lambda: srv.active_flows == 0)
            assert ServeClient(host, port, timeout=5.0).upload(b"y").trailer["ok"]
        finally:
            srv.stop(drain=False)

    def test_rejects_on_codec_queue_depth(self, payload):
        gate = threading.Event()
        pool = CodecThreadPool(1, name="test-gated")
        pool.submit(lambda index: gate.wait(30.0))  # occupy the worker
        pool.submit(lambda index: None)  # leave one job queued
        srv = TransferServer(
            ServeConfig(port=0, max_queued_jobs=1), codec_pool=pool
        ).start()
        try:
            host, port = srv.address
            with pytest.raises(FlowRejectedError, match="codec-queue-full"):
                ServeClient(host, port, timeout=5.0).upload(b"x")
            gate.set()
            assert _settle(lambda: pool.qsize() == 0)
            assert ServeClient(host, port, timeout=10.0).upload(b"y").trailer["ok"]
        finally:
            srv.stop(drain=False)
            gate.set()
            pool.close()

    def test_malformed_hello_rejected_with_error(self):
        srv = TransferServer(ServeConfig(port=0)).start()
        try:
            host, port = srv.address
            with socket.create_connection((host, port), timeout=5.0) as s:
                s.sendall(b"GARBAGE-NOT-A-HELLO")
                s.settimeout(5.0)
                buf = bytearray()
                while parse_control(buf) is None:
                    chunk = s.recv(4096)
                    if not chunk:
                        break
                    buf.extend(chunk)
                reply = parse_control(buf)
                assert reply is not None, "no error control before close"
                body, _ = reply
                assert body["ok"] is False
            assert _settle(lambda: srv.flows_failed == 1)
        finally:
            srv.stop(drain=False)

    def test_truncated_frame_fails_flow_server_side(self, payload):
        srv = TransferServer(ServeConfig(port=0)).start()
        try:
            host, port = srv.address
            with socket.create_connection((host, port), timeout=5.0) as s:
                s.sendall(encode_hello("sink", {}))
                s.settimeout(5.0)
                s.recv(4096)  # admission ack
                s.sendall(b"AB")  # half a block header, then half-close
                s.shutdown(socket.SHUT_WR)
                assert _settle(lambda: srv.flows_failed == 1)
        finally:
            srv.stop(drain=False)


class TestDrain:
    def test_graceful_drain_completes_inflight_flow(self, payload):
        srv = TransferServer(ServeConfig(port=0, codec_workers=2)).start()
        host, port = srv.address
        out = {}

        def run():
            out["result"] = ServeClient(host, port, timeout=30.0).upload(payload * 3)

        t = threading.Thread(target=run)
        t.start()
        time.sleep(0.05)  # let the flow get mid-stream
        srv.stop(drain=True, timeout=30.0)
        t.join(timeout=30.0)
        assert "result" in out, "in-flight flow was cut off by drain"
        assert out["result"].trailer["ok"] is True
        assert srv.flows_failed == 0

    def test_drain_refuses_new_connections(self, payload):
        srv = TransferServer(ServeConfig(port=0)).start()
        host, port = srv.address
        srv.request_drain()
        assert _settle(lambda: srv._finished.is_set())
        with pytest.raises((ConnectionError, FlowRejectedError, OSError)):
            ServeClient(host, port, timeout=2.0).upload(b"x")
        srv.stop(drain=False)

    def test_drain_deadline_force_closes_stuck_flow(self):
        srv = TransferServer(ServeConfig(port=0)).start()
        host, port = srv.address
        s = socket.create_connection((host, port), timeout=5.0)
        s.sendall(encode_hello("sink", {}))
        assert _settle(lambda: srv.active_flows == 1)
        t0 = time.monotonic()
        srv.stop(drain=True, timeout=0.5)  # the held flow never finishes
        assert time.monotonic() - t0 < 10.0
        assert srv.flows_failed == 1
        s.close()


class TestLeaks:
    def _open_fds(self) -> int:
        return len(os.listdir("/proc/self/fd"))

    @pytest.mark.skipif(
        not os.path.isdir("/proc/self/fd"), reason="needs procfs"
    )
    def test_no_fd_or_thread_leak_across_server_lifecycle(self, payload):
        before_threads = threading.active_count()
        before_fds = self._open_fds()
        for _ in range(2):
            srv = TransferServer(ServeConfig(port=0, codec_workers=2)).start()
            host, port = srv.address
            client = ServeClient(host, port, timeout=30.0)
            client.upload(payload)
            assert client.echo(payload, server_level="LIGHT").data == payload
            srv.stop(drain=True, timeout=15.0)
        assert _settle(lambda: threading.active_count() == before_threads)
        assert _settle(lambda: self._open_fds() <= before_fds)

    def test_abrupt_client_disconnects_leak_nothing(self, payload):
        srv = TransferServer(ServeConfig(port=0, codec_workers=2)).start()
        host, port = srv.address
        before_fds = self._open_fds() if os.path.isdir("/proc/self/fd") else None
        for _ in range(8):
            s = socket.create_connection((host, port), timeout=5.0)
            s.sendall(encode_hello("sink", {}) + b"AB")
            s.close()
        assert _settle(lambda: srv.flows_failed + srv.flows_completed >= 8)
        assert srv.active_flows == 0
        if before_fds is not None:
            assert _settle(lambda: self._open_fds() <= before_fds)
        srv.stop(drain=True, timeout=10.0)


class TestTelemetry:
    @pytest.fixture(autouse=True)
    def clean_bus(self):
        BUS.clear()
        yield
        BUS.clear()

    def test_flow_lifecycle_events(self, payload):
        events = []
        BUS.subscribe(events.append)
        srv = TransferServer(ServeConfig(port=0, max_flows=1, codec_workers=2)).start()
        try:
            host, port = srv.address
            client = ServeClient(host, port, timeout=30.0)
            client.upload(payload)
            holder = socket.create_connection((host, port), timeout=5.0)
            holder.sendall(encode_hello("sink", {}))
            assert _settle(lambda: srv.active_flows == 1)
            with pytest.raises(FlowRejectedError):
                client.upload(b"x")
            holder.close()
            assert _settle(lambda: srv.active_flows == 0)
        finally:
            srv.stop(drain=True, timeout=10.0)

        accepted = [e for e in events if isinstance(e, FlowAccepted)]
        closed = [e for e in events if isinstance(e, FlowClosed)]
        rejected = [e for e in events if isinstance(e, FlowRejected)]
        assert len(accepted) >= 1 and accepted[0].source == "serve"
        assert accepted[0].mode == "sink"
        assert rejected and rejected[0].reason == "max-flows"
        done = [e for e in closed if e.ok]
        assert done and done[0].app_bytes == len(payload)
        assert done[0].blocks_in > 0 and done[0].seconds > 0

    def test_shared_pool_counters_published(self, payload):
        depth_events, pool_events = [], []
        BUS.subscribe(depth_events.append, PipelineQueueDepth)
        BUS.subscribe(pool_events.append, BufferPoolStats)
        srv = TransferServer(ServeConfig(port=0, codec_workers=2)).start()
        try:
            host, port = srv.address
            ServeClient(host, port, timeout=30.0).upload(payload)
        finally:
            srv.stop(drain=True, timeout=10.0)
        serve_depth = [e for e in depth_events if e.source == "serve-codec"]
        serve_pool = [e for e in pool_events if e.source == "serve"]
        assert serve_depth and serve_depth[0].workers == 2
        assert serve_pool
        final = serve_pool[-1]
        assert final.hits + final.misses > 0

    def test_idle_daemon_publishes_nothing(self):
        events = []
        srv = TransferServer(ServeConfig(port=0)).start()
        try:
            host, port = srv.address
            ServeClient(host, port, timeout=10.0).upload(b"quiet")
        finally:
            srv.stop(drain=True, timeout=10.0)
        BUS.subscribe(events.append)  # subscribed only after the fact
        assert events == []


class TestProcessBackend:
    """The daemon's per-core codec sharding (codec_backend="process")."""

    @pytest.fixture()
    def proc_server(self):
        if not process_backend_available():
            pytest.skip("process backend unavailable on this platform")
        srv = TransferServer(
            ServeConfig(
                port=0,
                max_flows=16,
                codec_workers=2,
                codec_backend="process",
                codec_shards=2,
            )
        ).start()
        yield srv
        srv.stop(drain=False)

    def test_upload_and_echo_verified(self, proc_server, payload):
        assert proc_server.codec_backend == "process"
        assert proc_server.codec_shards == 2
        assert proc_server.codec_pool is None  # no shared thread pool
        result = _client(proc_server).upload(payload)
        assert result.trailer["ok"] is True
        assert result.trailer["app_bytes"] == len(payload)
        echoed = _client(proc_server).echo(payload, server_level="MEDIUM")
        assert echoed.data == payload

    def test_flows_shard_across_executors(self, proc_server, payload):
        for _ in range(4):
            assert _client(proc_server).upload(payload).trailer["ok"] is True
        stats = proc_server.codec_stats()
        assert stats["backend"] == "process"
        assert stats["shards"] == 2
        assert stats["job_failures"] == 0
        # Round-robin by flow id: four flows over two shards must have
        # exercised both of them.
        assert all(s["jobs_submitted"] > 0 for s in stats["executors"])

    def test_concurrent_process_backend_flows(self, proc_server, payload):
        errors: list = []

        def run():
            try:
                result = _client(proc_server).upload(payload)
                assert result.trailer["ok"] is True
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=run) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        assert not errors

    def test_unavailable_backend_degrades_to_threads(self, payload):
        saved = procpool._availability
        procpool._availability = (False, "forced-by-test")
        procpool._fallback_warned.clear()
        try:
            srv = TransferServer(
                ServeConfig(port=0, codec_workers=2, codec_backend="process")
            ).start()
            try:
                assert srv.codec_backend == "thread"
                assert srv.codec_pool is not None
                result = _client(srv).upload(payload)
                assert result.trailer["ok"] is True
            finally:
                srv.stop(drain=True, timeout=15.0)
        finally:
            procpool._availability = saved
            procpool._fallback_warned.clear()

    def test_stop_unlinks_all_segments(self, payload):
        if not process_backend_available():
            pytest.skip("process backend unavailable on this platform")
        srv = TransferServer(
            ServeConfig(
                port=0, codec_workers=2, codec_backend="process", codec_shards=2
            )
        ).start()
        names = [ex.pool._slabs.name for ex in srv._executors]
        _client(srv).upload(payload)
        srv.stop(drain=True, timeout=15.0)
        if os.path.isdir("/dev/shm"):
            for name in names:
                assert not os.path.exists(os.path.join("/dev/shm", name))
