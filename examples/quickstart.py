#!/usr/bin/env python3
"""Quickstart: adaptively compress a stream crossing a slow link.

The minimal end-to-end use of the library's core API:

1. wrap a binary sink in an ``AdaptiveBlockWriter`` — application
   writes are buffered into 128 KB blocks, each compressed at the level
   the rate-based decision algorithm currently favours;
2. give the stream a reason to compress: a token-bucket throttle caps
   the sink at 6 MB/s, like a contended cloud link;
3. read everything back with a plain ``BlockReader`` — every block
   names its own codec, so the reader needs no configuration.

With compressible text on the slow link the scheme climbs off level 0
within a few epochs and the application rate beats the wire rate.

Run:  python examples/quickstart.py
"""

import io

from repro import AdaptiveBlockWriter, BlockReader, Compressibility, SyntheticCorpus
from repro.io import ThrottledWriter, TokenBucket

LINK_RATE = 6e6  # bytes/s
TOTAL_MB = 24


def main() -> None:
    corpus = SyntheticCorpus(file_size=256 * 1024, seed=1)
    stream = corpus.payload(Compressibility.MODERATE) * (TOTAL_MB * 4)

    raw_sink = io.BytesIO()
    throttled = ThrottledWriter(raw_sink, TokenBucket(rate=LINK_RATE))

    writer = AdaptiveBlockWriter(
        throttled,
        block_size=128 * 1024,
        epoch_seconds=0.25,  # short epochs so this small demo adapts visibly
    )
    for offset in range(0, len(stream), 64 * 1024):
        writer.write(stream[offset : offset + 64 * 1024])
    writer.close()

    app_rate = writer.bytes_in / max(
        writer.controller.trace[-1].end - writer.controller.trace[0].start, 1e-9
    )
    print(f"application bytes : {writer.bytes_in:,}")
    print(f"wire bytes        : {writer.bytes_out:,}")
    print(f"overall ratio     : {writer.bytes_out / writer.bytes_in:.3f}")
    print(f"app rate          : {app_rate / 1e6:.1f} MB/s over a {LINK_RATE / 1e6:.0f} MB/s link")
    levels = [record.level_after for record in writer.controller.trace]
    print(f"level per epoch   : {levels}")

    # Decompression needs nothing but the stream itself.
    raw_sink.seek(0)
    restored = b"".join(BlockReader(raw_sink))
    assert restored == stream, "round-trip mismatch!"
    print("round-trip        : OK")


if __name__ == "__main__":
    main()
