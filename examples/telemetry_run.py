#!/usr/bin/env python3
"""Replay Figure 4's scenario with telemetry enabled, then report on it.

The run is the paper's adaptivity showcase — DYNAMIC on highly
compressible data, no background traffic — executed in the simulator
with the telemetry subsystem attached:

1. ``instrumented(...)`` subscribes the metric bridge, a JSONL trace
   exporter and an in-memory capture to the event bus; the scenario
   binds the bus clock to *simulated* seconds for the duration.
2. The run emits ``EpochClosed`` / ``LevelSwitched`` /
   ``BackoffUpdated`` events — the exact signals Figure 4 plots.
3. The JSONL trace is rendered back into a run report, the same output
   as ``repro-telemetry report telemetry_fig4.jsonl``.

Run:  python examples/telemetry_run.py
"""

from repro.experiments import fig4_adaptivity_high
from repro.telemetry import (
    LevelSwitched,
    instrumented,
    load_trace,
    render_report,
    summarize,
)

TRACE_PATH = "telemetry_fig4.jsonl"


def main() -> None:
    print("running fig4 (DYNAMIC, HIGH compressibility, no load) instrumented...")
    with instrumented(TRACE_PATH, capture_events=True) as session:
        result = fig4_adaptivity_high.run(scale=0.05)

    print(f"experiment checks: {'OK' if result.ok else 'FAILED'}")
    print(f"trace written to {TRACE_PATH} "
          f"({session.jsonl.events_written} events)")

    switches = session.memory.of_type(LevelSwitched)
    print(f"observed {len(switches)} level switches live on the bus; "
          f"first: {switches[0].level_before}->{switches[0].level_after} "
          f"at t={switches[0].ts:.2f}s (simulated)")

    print()
    print("metrics snapshot (selected):")
    snap = session.metrics_snapshot()
    for name in ("epochs.closed", "level.switches", "backoff.reward",
                 "backoff.punish", "epochs.app_bytes"):
        if name in snap:
            print(f"  {name:20s} {snap[name]:,.0f}")

    print()
    print(render_report(summarize(load_trace(TRACE_PATH))))


if __name__ == "__main__":
    main()
