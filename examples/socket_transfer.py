#!/usr/bin/env python3
"""Adaptive compression over a real TCP connection (localhost).

The real-I/O counterpart of the simulation experiments: actual bytes,
actual zlib/lzma, an actual kernel socket — with a token-bucket
throttle standing in for the contended cloud link.  On the slow link,
compressing the compressible workload multiplies the application-level
throughput; on the JPEG-like workload the scheme backs off to (nearly)
no compression and the stored-block fallback caps the overhead.

Run:  python examples/socket_transfer.py
"""

from repro.data import Compressibility, RepeatingSource, SyntheticCorpus
from repro.io import run_socket_transfer

TOTAL = 10_000_000
LINK = 4e6  # bytes/s


def main() -> None:
    corpus = SyntheticCorpus(file_size=256 * 1024, seed=2)
    print(f"link throttled to {LINK / 1e6:.0f} MB/s, {TOTAL / 1e6:.0f} MB per run\n")

    for cls in (Compressibility.HIGH, Compressibility.MODERATE, Compressibility.LOW):
        source = RepeatingSource.from_corpus(cls, TOTAL, corpus)
        result = run_socket_transfer(
            source,
            rate_limit=LINK,
            block_size=64 * 1024,
            epoch_seconds=0.1,
        )
        levels = [epoch.level_after for epoch in result.epochs]
        print(
            f"{cls.value:9s} app rate {result.app_rate / 1e6:6.2f} MB/s "
            f"({result.app_rate / LINK:4.1f}x the wire), "
            f"ratio {result.compression_ratio:.3f}, levels {levels}"
        )

    print(
        "\nHIGH data rides far above the wire rate; LOW data costs at most "
        "the 20-byte/block header."
    )


if __name__ == "__main__":
    main()
