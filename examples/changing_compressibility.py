#!/usr/bin/env python3
"""Figure 6 scenario: the scheme tracks changing data compressibility.

The sender alternates between a highly compressible bitmap-like file
and an already-compressed JPEG-like file.  The rate-based scheme cannot
see the data — it only sees its own application data rate — yet the
chosen compression level follows the switches, with the asymmetry the
paper describes: downswitching (HIGH→LOW) is detected within one epoch,
while upswitching (LOW→HIGH) can lag because at level 0 the data rate
carries no information about compressibility.

Run:  python examples/changing_compressibility.py
"""

from repro.data import Compressibility, SwitchingSource
from repro.experiments.fig4_adaptivity_high import render_trace
from repro.sim import ScenarioConfig, make_dynamic_factory, run_transfer_scenario

SEGMENT = 4 * 10**9
TOTAL = 5 * SEGMENT


def main() -> None:
    config = ScenarioConfig(
        scheme_factory=make_dynamic_factory(),
        source_factory=lambda: SwitchingSource.alternating(
            Compressibility.HIGH, Compressibility.LOW, SEGMENT, TOTAL
        ),
        total_bytes=TOTAL,
        n_background=0,
        seed=3,
    )
    result = run_transfer_scenario(config)

    print(
        f"switching HIGH<->LOW every {SEGMENT / 1e9:.0f} GB, "
        f"{TOTAL / 1e9:.0f} GB total, completed in {result.completion_time:.0f}s\n"
    )
    print(render_trace(result))

    # Annotate the segment boundaries in epoch terms.
    carried = 0.0
    boundaries = []
    for epoch in result.epochs:
        before = int(carried // SEGMENT)
        carried += epoch.app_bytes
        if int(carried // SEGMENT) != before:
            boundaries.append(epoch.end)
    print(
        "\ndata switches at t ~= "
        + ", ".join(f"{t:.0f}s" for t in boundaries[:4])
        + "  (HIGH->LOW->HIGH->LOW->HIGH)"
    )


if __name__ == "__main__":
    main()
