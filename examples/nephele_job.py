#!/usr/bin/env python3
"""A Nephele-style dataflow job with transparently compressing channels.

Builds the paper's integration scenario as a three-task DAG:

    producer --[network channel, ADAPTIVE]--> filter --[file channel, STATIC]--> sink

The tasks contain zero compression logic — "the implementation is
completely transparent to the tasks" — yet the network channel adapts
its level to the achieved throughput and the file channel compresses
statically, both using the same self-contained 128 KB block framing.

Run:  python examples/nephele_job.py
"""

from repro.data import Compressibility, RepeatingSource, SyntheticCorpus
from repro.nephele import (
    ChannelSpec,
    ChannelType,
    CollectTask,
    CompressionMode,
    JobGraph,
    MapTask,
    SourceTask,
    run_job,
)

TOTAL_BYTES = 4_000_000


def main() -> None:
    corpus = SyntheticCorpus(file_size=256 * 1024, seed=11)

    graph = JobGraph("wordy-pipeline")
    graph.add_vertex(
        "producer",
        SourceTask(
            lambda: RepeatingSource.from_corpus(
                Compressibility.MODERATE, TOTAL_BYTES, corpus
            ),
            record_bytes=16 * 1024,
        ),
    )
    graph.add_vertex("filter", MapTask(lambda record: record.upper()))
    collector = CollectTask()
    graph.add_vertex("sink", collector)

    graph.connect(
        "producer",
        "filter",
        ChannelType.NETWORK,
        ChannelSpec(
            ChannelType.NETWORK,
            compression=CompressionMode.ADAPTIVE,
            block_size=64 * 1024,
            epoch_seconds=0.1,
        ),
    )
    graph.connect(
        "filter",
        "sink",
        ChannelType.FILE,
        ChannelSpec(
            ChannelType.FILE,
            compression=CompressionMode.STATIC,
            static_level=2,  # MEDIUM
            block_size=64 * 1024,
        ),
    )

    result = run_job(graph, timeout=120)

    print(f"job {result.job_name!r} finished in {result.wall_seconds:.2f}s")
    print(f"records received: {collector.records_received}")
    print(f"bytes received  : {collector.bytes_received:,}")
    assert collector.bytes_received == TOTAL_BYTES
    for stats in result.channel_stats:
        ratio = stats.compression_ratio
        ratio_str = f"{ratio:.3f}" if ratio is not None else "n/a"
        print(
            f"channel {stats.edge:18s} [{stats.channel_type.value:9s}] "
            f"in={stats.bytes_in:,} out={stats.bytes_out:,} ratio={ratio_str}"
        )


if __name__ == "__main__":
    main()
