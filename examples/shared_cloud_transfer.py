#!/usr/bin/env python3
"""Shared-I/O cloud transfer: static levels vs the adaptive scheme.

A scaled-down Table II: simulate the paper's sender→receiver job on
the KVM-paravirt evaluation platform while 0–3 co-located virtual
machines saturate the same NIC, and compare completion times of the
four static compression levels against the rate-based DYNAMIC scheme.

Watch for the paper's two headline effects:
* on highly compressible data with heavy contention, DYNAMIC finishes
  ~4x faster than sending uncompressed;
* DYNAMIC never trails the best static level by much — without knowing
  the data or the contention in advance.

Run:  python examples/shared_cloud_transfer.py
"""

from repro.data import Compressibility
from repro.experiments.reporting import format_table
from repro.sim import (
    ScenarioConfig,
    make_dynamic_factory,
    make_static_factory,
    run_transfer_scenario,
)

TOTAL_BYTES = 3 * 10**9  # scaled down from the paper's 50 GB

SCHEMES = [
    ("NO", make_static_factory(0, "NO")),
    ("LIGHT", make_static_factory(1, "LIGHT")),
    ("MEDIUM", make_static_factory(2, "MEDIUM")),
    ("HEAVY", make_static_factory(3, "HEAVY")),
    ("DYNAMIC", make_dynamic_factory()),
]


def main() -> None:
    for n_background in (0, 3):
        rows = []
        for name, factory in SCHEMES:
            row = [name]
            for cls in (Compressibility.HIGH, Compressibility.MODERATE, Compressibility.LOW):
                result = run_transfer_scenario(
                    ScenarioConfig(
                        scheme_factory=factory,
                        compressibility=cls,
                        total_bytes=TOTAL_BYTES,
                        n_background=n_background,
                        seed=7,
                    )
                )
                row.append(f"{result.completion_time:.0f}s")
            rows.append(row)
        print(
            format_table(
                ["level", "HIGH", "MODERATE", "LOW"],
                rows,
                title=f"\n{n_background} co-located busy connection(s), "
                f"{TOTAL_BYTES / 1e9:.0f} GB transfer",
            )
        )

    print(
        "\nNote how the best static level depends on data *and* contention —"
        "\nwhich is exactly why a static choice is a gamble and DYNAMIC is not."
    )


if __name__ == "__main__":
    main()
