#!/usr/bin/env python3
"""The decision-model zoo, head to head.

Runs every decision model in the library — the paper's rate-based
scheme, its per-level-memory extension, and re-implementations of the
related-work baselines the paper discusses (resource-based à la
Krintz & Sucu, queue-based à la AdOC, threshold-based à la NCTCSys) —
on the same three shared-I/O scenarios, and prints completion times
against the best static level.

Run:  python examples/scheme_zoo.py
"""

from repro.data import Compressibility
from repro.experiments.reporting import format_table
from repro.schemes import (
    MemoryRateScheme,
    QueueBasedScheme,
    RateBasedScheme,
    ResourceBasedScheme,
    ThresholdScheme,
    TrainedLevel,
)
from repro.sim import ScenarioConfig, make_static_factory, run_transfer_scenario
from repro.sim.calibration import CODEC_MODEL

MB = 1e6
TOTAL = 5 * 10**9


def training_table(cls):
    table = [TrainedLevel(comp_speed=float("inf"), ratio=1.0)]
    for name in ("LIGHT", "MEDIUM", "HEAVY"):
        pt = CODEC_MODEL[(name, cls)]
        table.append(TrainedLevel(comp_speed=pt.comp_speed, ratio=pt.ratio))
    return table


SCENARIOS = [
    ("HIGH, 0 conns", Compressibility.HIGH, 0),
    ("HIGH, 3 conns", Compressibility.HIGH, 3),
    ("LOW, 2 conns", Compressibility.LOW, 2),
]


def zoo(cls):
    return {
        "DYNAMIC (paper)": lambda n: RateBasedScheme(n),
        "DYNAMIC-MEM (ext)": lambda n: MemoryRateScheme(n),
        "RESOURCE (K&S)": lambda n: ResourceBasedScheme(training_table(cls)),
        "QUEUE (AdOC)": lambda n: QueueBasedScheme(n, threshold=2 * MB),
        "THRESH (NCTCSys)": lambda n: ThresholdScheme(
            cutoffs=[60 * MB, 30 * MB, 8 * MB]
        ),
    }


def main() -> None:
    rows = []
    for label, cls, n_background in SCENARIOS:
        static_times = {}
        for level, name in enumerate(("NO", "LIGHT", "MEDIUM", "HEAVY")):
            cfg = ScenarioConfig(
                scheme_factory=make_static_factory(level, name),
                compressibility=cls,
                total_bytes=TOTAL,
                n_background=n_background,
                seed=4,
            )
            static_times[name] = run_transfer_scenario(cfg).completion_time
        best_name = min(static_times, key=static_times.get)
        best = static_times[best_name]
        rows.append([label, f"best static ({best_name})", f"{best:.0f}", "1.00x"])
        for name, factory in zoo(cls).items():
            cfg = ScenarioConfig(
                scheme_factory=factory,
                compressibility=cls,
                total_bytes=TOTAL,
                n_background=n_background,
                seed=4,
            )
            t = run_transfer_scenario(cfg).completion_time
            rows.append([label, name, f"{t:.0f}", f"{t / best:.2f}x"])
        rows.append(["", "", "", ""])

    print(
        format_table(
            ["scenario", "scheme", "completion (s)", "vs best static"],
            rows,
            title=f"Decision-model zoo, {TOTAL / 1e9:.0f} GB transfers "
            "(KVM-paravirt evaluation platform)",
        )
    )
    print(
        "\nNo adaptive scheme knows the data or the contention in advance;"
        "\nthe static oracle does. Closer to 1.00x is better."
    )


if __name__ == "__main__":
    main()
