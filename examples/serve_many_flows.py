#!/usr/bin/env python3
"""Many concurrent adaptive flows through one serve daemon.

The paper's setting is many tenants sharing one cloud I/O bottleneck.
``run_socket_transfer`` demonstrates one adaptive flow; this example
runs a :class:`~repro.serve.TransferServer` — one event-loop thread,
one shared codec pool, one shared buffer pool — and pushes N concurrent
flows of *different compressibility* through it at once.  Half the
flows upload (server decodes, counts and CRC-checks), half round-trip
in echo mode (the server re-encodes every block through that flow's own
adaptive controller and streams it back, verified byte-for-byte).

Also the CI smoke driver: exits non-zero if any flow fails
verification, so ``timeout N python examples/serve_many_flows.py``
is a complete daemon health check.

Run:  python examples/serve_many_flows.py [--flows 8] [--mib 4]
"""

from __future__ import annotations

import argparse
import sys
import threading
import time

from repro.data import Compressibility, SyntheticCorpus
from repro.serve import ServeClient, ServeConfig, TransferServer

CLASSES = (Compressibility.HIGH, Compressibility.MODERATE, Compressibility.LOW)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--flows", type=int, default=8)
    parser.add_argument("--mib", type=int, default=4, help="payload MiB per flow")
    args = parser.parse_args(argv)

    corpus = SyntheticCorpus(file_size=256 * 1024, seed=5)
    payloads = {
        cls: (corpus.payload(cls) * (args.mib * 4 + 1))[: args.mib * 2**20]
        for cls in CLASSES
    }

    server = TransferServer(ServeConfig(port=0, max_flows=args.flows)).start()
    host, port = server.address
    print(
        f"daemon on {host}:{port} — 1 loop thread, "
        f"{server.codec_pool.workers} shared codec workers, "
        f"{args.flows} concurrent flows x {args.mib} MiB\n"
    )

    lines: list = []
    failures: list = []

    def run(i: int) -> None:
        cls = CLASSES[i % len(CLASSES)]
        data = payloads[cls]
        mode = "echo" if i % 2 else "sink"
        try:
            client = ServeClient(host, port, timeout=120.0)
            if mode == "echo":
                result = client.echo(data, collect=False)
            else:
                result = client.upload(data)
            lines.append(
                f"flow {result.flow_id:2d} {mode:4s} {cls.value:9s} "
                f"{result.app_bytes / result.seconds / 1e6:7.1f} MB/s  "
                f"ratio {result.compression_ratio:.3f}  verified"
            )
        except Exception as exc:  # noqa: BLE001 - reported as failure
            failures.append(f"flow {i} ({mode}, {cls.value}): {exc!r}")

    threads = [threading.Thread(target=run, args=(i,)) for i in range(args.flows)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    server.stop(drain=True, timeout=30.0)

    for line in sorted(lines):
        print(line)
    for failure in failures:
        print(f"FAILED: {failure}", file=sys.stderr)
    total = args.flows * args.mib * 2**20
    print(
        f"\n{len(lines)}/{args.flows} flows verified in {wall:.2f}s "
        f"({total / wall / 1e6:.1f} MB/s aggregate); "
        f"server: {server.flows_completed} completed, "
        f"{server.flows_failed} failed; shared pool ran "
        f"{server.codec_pool.stats()['jobs_completed']} codec jobs on "
        f"{server.codec_pool.workers} threads"
    )
    return 1 if failures or server.flows_failed else 0


if __name__ == "__main__":
    sys.exit(main())
