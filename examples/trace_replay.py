#!/usr/bin/env python3
"""Record a transfer's observation trace, replay it, analyze it.

Operational tooling around the decision schemes:

1. run one adaptive transfer in the simulator and *record* the epoch
   observations the scheme saw (serialized as JSON-lines);
2. *replay* the trace through other decision models offline — "what
   would scheme X have chosen at each step?" — without rerunning the
   workload;
3. crunch the trace with the NumPy analysis helpers (time-weighted
   level occupancy, rate statistics, uniform resampling for plotting).

Run:  python examples/trace_replay.py
"""

import io

from repro.data import Compressibility
from repro.schemes import (
    MemoryRateScheme,
    QueueBasedScheme,
    RateBasedScheme,
    StaticScheme,
)
from repro.schemes.replay import (
    dump_trace,
    load_trace,
    observations_from_result,
    replay_many,
)
from repro.sim import (
    ScenarioConfig,
    level_occupancy,
    make_dynamic_factory,
    rate_statistics,
    run_transfer_scenario,
)


def main() -> None:
    # 1. Record.
    config = ScenarioConfig(
        scheme_factory=make_dynamic_factory(),
        compressibility=Compressibility.HIGH,
        total_bytes=5 * 10**9,
        n_background=2,
        seed=12,
    )
    result = run_transfer_scenario(config)
    observations = observations_from_result(result)

    buf = io.StringIO()
    n = dump_trace(observations, buf)
    print(f"recorded {n} epochs ({len(buf.getvalue())} bytes of JSONL)\n")

    # 2. Replay through the zoo.
    buf.seek(0)
    loaded = list(load_trace(buf))
    table = replay_many(
        loaded,
        [
            RateBasedScheme(4),
            MemoryRateScheme(4),
            QueueBasedScheme(4),
            StaticScheme(4, 1, name="LIGHT"),
        ],
    )
    print("replayed decisions (first 25 epochs):")
    for name, levels in table.items():
        print(f"  {name:12s} {levels[:25]}")

    # 3. Analyze the original run.
    print("\ntime-weighted level occupancy of the recorded run:")
    for level, share in sorted(level_occupancy(result).items()):
        print(f"  level {level}: {100 * share:5.1f}%")
    stats = rate_statistics(result)
    print(
        f"\napplication rate: mean {stats['mean'] / 1e6:.1f} MB/s, "
        f"p50 {stats['p50'] / 1e6:.1f}, p95 {stats['p95'] / 1e6:.1f}, "
        f"std {stats['std'] / 1e6:.1f}"
    )


if __name__ == "__main__":
    main()
