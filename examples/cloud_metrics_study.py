#!/usr/bin/env python3
"""The Section II study in miniature: why displayed metrics lie.

Runs the paper's three accuracy experiments on the simulated platforms:

1. CPU utilization displayed inside the VM vs observed on the host
   during network send (Figure 1a) — the KVM-paravirt gap reaches ~15x;
2. network throughput distributions (Figure 2) — EC2's whipsaw;
3. file-write throughput (Figure 3) — XEN's page-cache mirage, where
   the VM sees hundreds of MB/s while the physical disk does 80 and
   gigabytes remain unflushed in host RAM.

These are the measurements that motivate a decision model using only
the application data rate.

Run:  python examples/cloud_metrics_study.py
"""

import statistics

from repro.sim import Environment, PROFILES, PhysicalHost, RngStreams
from repro.sim.disk import CachedDisk
from repro.sim.workload import run_file_write, run_net_send

PLATFORMS = ("native", "kvm-full", "kvm-paravirt", "xen-paravirt", "ec2")


def fresh_vm(platform: str):
    env = Environment()
    host = PhysicalHost(env, PROFILES[platform], RngStreams(5), name=platform)
    return env, host, host.spawn_vm()


def main() -> None:
    print("1) CPU utilization during network send (2 GB)\n")
    print(f"   {'platform':24s} {'VM view':>8s} {'host view':>10s} {'gap':>6s}")
    for platform in PLATFORMS:
        env, host, vm = fresh_vm(platform)
        report = run_net_send(env, vm, 2e9)
        host_str = (
            f"{report.host_cpu_total:9.1f}%"
            if PROFILES[platform].host_observable
            else "   (none)"
        )
        gap = (
            f"{report.discrepancy_factor:5.1f}x"
            if PROFILES[platform].host_observable
            else "     -"
        )
        print(
            f"   {PROFILES[platform].display_name:24s} "
            f"{report.vm_cpu_total:7.1f}% {host_str} {gap}"
        )

    print("\n2) Network throughput as seen inside the VM (20 MB samples)\n")
    for platform in PLATFORMS:
        env, host, vm = fresh_vm(platform)
        report = run_net_send(env, vm, 3e9)
        rates = [r / 1e6 for r in report.throughput_samples]
        print(
            f"   {PROFILES[platform].display_name:24s} "
            f"median {statistics.median(rates):6.1f} MB/s   "
            f"min {min(rates):6.1f}   max {max(rates):6.1f}"
        )

    print("\n3) File-write throughput and the XEN cache mirage (6 GB)\n")
    for platform in ("kvm-paravirt", "xen-paravirt"):
        env, host, vm = fresh_vm(platform)
        report = run_file_write(env, vm, 6e9)
        rates = [r / 1e6 for r in report.throughput_samples]
        unflushed = (
            host.disk.unflushed_bytes / 1e9
            if isinstance(host.disk, CachedDisk)
            else 0.0
        )
        print(
            f"   {PROFILES[platform].display_name:24s} "
            f"displayed median {statistics.median(rates):6.1f} MB/s   "
            f"min {min(rates):6.2f}   unflushed at end: {unflushed:.1f} GB"
        )
    print(
        "\n   The XEN VM believes it wrote at memory speed; the data is "
        "still in host RAM."
    )


if __name__ == "__main__":
    main()
