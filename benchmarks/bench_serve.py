"""Concurrency scaling benchmark for the repro.serve daemon.

Standalone script (not a pytest-benchmark file): it starts one
:class:`~repro.serve.TransferServer` and drives 1, 4 and 16 concurrent
client flows through it, measuring aggregate and per-flow application
throughput, then writes ``BENCH_serve.json`` and — in ``--quick`` mode
— enforces the CI regression gate.

Every flow is CRC-verified end to end by :class:`~repro.serve.ServeClient`
(the trailer carries the server's plaintext CRC32), so a passing run is
also a 16-way byte-identity check, not just a stopwatch.

The gate is deliberately conservative, because hosted CI runners vary
wildly in cores and background load:

* every flow at every concurrency level must complete verified, and
  the server must report zero failed flows (correctness gate, always);
* multiplexing must not *collapse*: aggregate throughput at 16 flows
  must stay above 25 % of the single-flow aggregate (the event loop
  and the shared codec pool are allowed to be saturated, but a fair
  scheduler should never be 4x worse than one flow doing the same
  total work);
* with >= 2 usable cores, 4 flows must move at least as much aggregate
  data per second as 60 % of 1 flow (shared-pool contention bound).

``--backend both`` repeats every round on the process-sharded codec
substrate (``ServeConfig(codec_backend="process")``), so one artifact
records the serve-layer threads-vs-processes crossover; each round
notes the backend/shards/workers its daemon actually resolved.

``--control`` switches to the contended-fleet axis instead: a fixed
flow count on a deliberately capped codec pool, once per fleet policy
(uncontrolled, fair-share, greedy-throughput), written to
``BENCH_control.json``.  Its gate asserts that turning the fair-share
control plane on never costs more than 5 % of the uncontrolled
aggregate throughput — the controller must be free when it has nothing
to say.  Each policy keeps the best of ``--repeats`` rounds, so the
ratio compares substrates, not scheduler jitter.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--quick]
        [--backend thread|process|both]
        [--mib 8] [--shards N] [--out BENCH_serve.json]
        [--control] [--repeats 2] [--control-out BENCH_control.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import threading
import time

from bench_pipeline import core_info, resolve_backends

from repro.data.corpus import Compressibility, generate
from repro.serve import ServeClient, ServeConfig, TransferServer

FLOW_COUNTS = (1, 4, 16)

#: Contended-fleet axis: enough flows to oversubscribe the capped pool.
CONTROL_FLOWS = 8
CONTROL_POLICIES = (None, "fair-share", "greedy-throughput")


def run_round(
    data: bytes,
    flows: int,
    codec_workers: int,
    backend: str = "thread",
    shards: int = 0,
    policy: str | None = None,
    control_interval: float = 1.0,
) -> dict:
    """One daemon, ``flows`` concurrent uploads; aggregate + per-flow stats."""
    server = TransferServer(
        ServeConfig(
            port=0,
            max_flows=flows + 4,
            codec_workers=codec_workers,
            codec_backend=backend,
            codec_shards=shards,
            policy=policy,
            control_interval=control_interval,
        )
    ).start()
    host, port = server.address
    results = [None] * flows
    errors: list = []

    def run(i: int) -> None:
        try:
            client = ServeClient(host, port, timeout=120.0)
            results[i] = client.upload(data, level="LIGHT")
        except Exception as exc:  # noqa: BLE001 - recorded for the gate
            errors.append(f"flow {i}: {exc!r}")

    threads = [threading.Thread(target=run, args=(i,)) for i in range(flows)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    # Read the *resolved* substrate shape off the live server: the
    # config value may be 0 (= auto), and recording that instead of
    # what actually ran made earlier artifacts unauditable.
    codec_workers_resolved = server.codec_workers
    codec_backend_resolved = server.codec_backend
    codec_shards_resolved = server.codec_shards
    rebalances = server.controller.rebalances if server.controller else 0
    server.stop(drain=True, timeout=30.0)

    flow_seconds = [r.seconds for r in results if r is not None]
    total_app = len(data) * len(flow_seconds)
    return {
        "flows": flows,
        "policy": policy or "uncontrolled",
        "rebalances": rebalances,
        "completed": len(flow_seconds),
        "codec_workers_resolved": codec_workers_resolved,
        "codec_backend": codec_backend_resolved,
        "codec_shards": codec_shards_resolved,
        "errors": errors,
        "server_failed_flows": server.flows_failed,
        "wall_seconds": round(wall, 4),
        "aggregate_mb_per_s": round(total_app / wall / 1e6, 2) if wall else 0.0,
        "per_flow_mb_per_s": round(len(data) / (sum(flow_seconds) / len(flow_seconds)) / 1e6, 2)
        if flow_seconds
        else 0.0,
        "flow_seconds_min": round(min(flow_seconds), 4) if flow_seconds else None,
        "flow_seconds_max": round(max(flow_seconds), 4) if flow_seconds else None,
        "codec_pool": server.codec_stats(),
        "buffer_pool": server.buffer_pool.stats(),
    }


def run_matrix(
    mib: int,
    codec_workers: int,
    flow_counts,
    backends=("thread",),
    shards: int = 0,
) -> dict:
    data = generate(Compressibility.MODERATE, mib * 2**20, seed=13)
    rounds = []
    for backend in backends:
        for flows in flow_counts:
            cell = run_round(data, flows, codec_workers, backend, shards)
            rounds.append(cell)
            print(
                f"  flows={flows:3d} {cell['codec_backend']:7s}  "
                f"aggregate {cell['aggregate_mb_per_s']:8.1f} MB/s  "
                f"wall {cell['wall_seconds']:.2f}s  "
                f"completed {cell['completed']}/{flows}",
                flush=True,
            )
    return {
        "meta": {
            "payload_mib_per_flow": mib,
            # Both sides of the auto-sizing: what was asked for (0 =
            # auto) and what every round's daemon actually ran with.
            "codec_workers_requested": codec_workers,
            "codec_workers_resolved": rounds[0]["codec_workers_resolved"]
            if rounds
            else None,
            "backends": sorted({c["codec_backend"] for c in rounds}),
            "codec_shards": rounds[0]["codec_shards"] if rounds else shards,
            **core_info(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "rounds": rounds,
    }


def _round(payload: dict, flows: int, backend: str) -> dict:
    for cell in payload["rounds"]:
        if cell["flows"] == flows and cell["codec_backend"] == backend:
            return cell
    raise KeyError(f"no round for flows={flows}/{backend}")


def check_gate(payload: dict) -> list[str]:
    """Return failure messages (empty = gate passed)."""
    failures = []
    for cell in payload["rounds"]:
        if cell["completed"] != cell["flows"] or cell["errors"]:
            failures.append(
                f"flows={cell['flows']}/{cell['codec_backend']}: only "
                f"{cell['completed']} of {cell['flows']} flows completed "
                f"verified ({cell['errors'][:2]})"
            )
        if cell["server_failed_flows"]:
            failures.append(
                f"flows={cell['flows']}/{cell['codec_backend']}: server "
                f"reported {cell['server_failed_flows']} failed flows"
            )
    if failures:
        return failures  # throughput ratios are meaningless on failures
    cores = payload["meta"]["usable_cores"]
    for backend in payload["meta"]["backends"]:
        base = _round(payload, 1, backend)["aggregate_mb_per_s"]
        if base <= 0:
            failures.append(
                f"{backend}: single-flow round produced no throughput sample"
            )
            continue
        sixteen = _round(payload, 16, backend)["aggregate_mb_per_s"]
        if sixteen < 0.25 * base:
            failures.append(
                f"{backend}: 16-flow aggregate collapsed: {sixteen:.1f} MB/s "
                f"vs {base:.1f} MB/s single-flow (floor 25%)"
            )
        if cores >= 2:
            four = _round(payload, 4, backend)["aggregate_mb_per_s"]
            if four < 0.6 * base:
                failures.append(
                    f"{backend}: 4-flow aggregate {four:.1f} MB/s below 60% "
                    f"of single-flow {base:.1f} MB/s with {cores} cores"
                )
    return failures


def run_control_matrix(
    mib: int,
    codec_workers: int,
    flow_count: int = CONTROL_FLOWS,
    policies=CONTROL_POLICIES,
    repeats: int = 2,
) -> dict:
    """Contended fleet, one best-of-``repeats`` round per fleet policy.

    The pool is capped at two workers regardless of the host so the
    flows genuinely contend, which is the regime the control plane
    exists for — on an idle many-core box the policies would never be
    asked to arbitrate anything.
    """
    data = generate(Compressibility.MODERATE, mib * 2**20, seed=13)
    workers = codec_workers or 2
    rounds = []
    for policy in policies:
        best = None
        for _ in range(max(1, repeats)):
            cell = run_round(
                data,
                flow_count,
                workers,
                policy=policy,
                control_interval=0.25,
            )
            if best is None or (
                not cell["errors"]
                and cell["aggregate_mb_per_s"] > best["aggregate_mb_per_s"]
            ):
                best = cell
        rounds.append(best)
        print(
            f"  policy={best['policy']:18s} aggregate "
            f"{best['aggregate_mb_per_s']:8.1f} MB/s  "
            f"wall {best['wall_seconds']:.2f}s  "
            f"rebalances {best['rebalances']}  "
            f"completed {best['completed']}/{flow_count}",
            flush=True,
        )
    return {
        "meta": {
            "axis": "contended-fleet",
            "payload_mib_per_flow": mib,
            "flow_count": flow_count,
            "codec_workers": workers,
            "repeats": repeats,
            **core_info(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "rounds": rounds,
    }


def _policy_round(payload: dict, policy: str) -> dict:
    for cell in payload["rounds"]:
        if cell["policy"] == policy:
            return cell
    raise KeyError(f"no round for policy={policy}")


def check_control_gate(payload: dict) -> list[str]:
    """Return failure messages for the contended-fleet axis."""
    failures = []
    for cell in payload["rounds"]:
        if cell["completed"] != cell["flows"] or cell["errors"]:
            failures.append(
                f"policy={cell['policy']}: only {cell['completed']} of "
                f"{cell['flows']} flows completed verified "
                f"({cell['errors'][:2]})"
            )
        if cell["server_failed_flows"]:
            failures.append(
                f"policy={cell['policy']}: server reported "
                f"{cell['server_failed_flows']} failed flows"
            )
    if failures:
        return failures
    base = _policy_round(payload, "uncontrolled")["aggregate_mb_per_s"]
    if base <= 0:
        return ["uncontrolled round produced no throughput sample"]
    fair = _policy_round(payload, "fair-share")
    if fair["aggregate_mb_per_s"] < 0.95 * base:
        failures.append(
            f"fair-share collapsed the fleet: {fair['aggregate_mb_per_s']:.1f} "
            f"MB/s vs {base:.1f} MB/s uncontrolled (floor 95%)"
        )
    if fair["rebalances"] == 0:
        failures.append(
            "fair-share round recorded zero policy passes — the control "
            "plane never ran, so the ratio proves nothing"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small per-flow payload, gate enforced",
    )
    parser.add_argument("--mib", type=int, default=None, help="payload MiB per flow")
    parser.add_argument(
        "--workers", type=int, default=0, help="shared codec workers (0 = auto)"
    )
    parser.add_argument(
        "--backend",
        choices=["thread", "process", "both"],
        default="thread",
        help="codec executor backend ('both' records the crossover)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="process-backend codec shards (0 = one per codec worker)",
    )
    parser.add_argument("--out", default="BENCH_serve.json", help="JSON output path")
    parser.add_argument(
        "--control",
        action="store_true",
        help="run the contended-fleet policy axis instead of the scaling matrix",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="control axis: rounds per policy, best kept",
    )
    parser.add_argument(
        "--control-out",
        default="BENCH_control.json",
        help="control-axis JSON output path",
    )
    args = parser.parse_args(argv)

    mib = args.mib or (2 if args.quick else 8)
    if args.control:
        print(
            f"contended-fleet benchmark: {mib} MiB/flow, "
            f"{CONTROL_FLOWS} flows on a capped pool, "
            f"policies={[p or 'uncontrolled' for p in CONTROL_POLICIES]}, "
            f"usable cores={core_info()['usable_cores']}",
            flush=True,
        )
        payload = run_control_matrix(mib, args.workers, repeats=args.repeats)
        with open(args.control_out, "w") as fp:
            json.dump(payload, fp, indent=2)
        print(f"matrix written to {args.control_out}")
        failures = check_control_gate(payload)
        for failure in failures:
            print(f"GATE FAIL: {failure}", file=sys.stderr)
        if not failures:
            print("gate passed")
        return 1 if failures else 0

    backends = resolve_backends(args.backend)
    print(
        f"serve benchmark: {mib} MiB/flow at {FLOW_COUNTS} concurrent flows, "
        f"backends={'/'.join(backends)}, "
        f"usable cores={core_info()['usable_cores']}",
        flush=True,
    )
    payload = run_matrix(mib, args.workers, FLOW_COUNTS, backends, args.shards)
    with open(args.out, "w") as fp:
        json.dump(payload, fp, indent=2)
    print(f"matrix written to {args.out}")

    failures = check_gate(payload)
    for failure in failures:
        print(f"GATE FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("gate passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
