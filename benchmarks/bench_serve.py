"""Concurrency scaling benchmark for the repro.serve daemon.

Standalone script (not a pytest-benchmark file): it starts one
:class:`~repro.serve.TransferServer` and drives 1, 4 and 16 concurrent
client flows through it, measuring aggregate and per-flow application
throughput, then writes ``BENCH_serve.json`` and — in ``--quick`` mode
— enforces the CI regression gate.

Every flow is CRC-verified end to end by :class:`~repro.serve.ServeClient`
(the trailer carries the server's plaintext CRC32), so a passing run is
also a 16-way byte-identity check, not just a stopwatch.

The gate is deliberately conservative, because hosted CI runners vary
wildly in cores and background load:

* every flow at every concurrency level must complete verified, and
  the server must report zero failed flows (correctness gate, always);
* multiplexing must not *collapse*: aggregate throughput at 16 flows
  must stay above 25 % of the single-flow aggregate (the event loop
  and the shared codec pool are allowed to be saturated, but a fair
  scheduler should never be 4x worse than one flow doing the same
  total work);
* with >= 2 usable cores, 4 flows must move at least as much aggregate
  data per second as 60 % of 1 flow (shared-pool contention bound).

``--backend both`` repeats every round on the process-sharded codec
substrate (``ServeConfig(codec_backend="process")``), so one artifact
records the serve-layer threads-vs-processes crossover; each round
notes the backend/shards/workers its daemon actually resolved.

``--control`` switches to the contended-fleet axis instead: a fixed
flow count on a deliberately capped codec pool, once per fleet policy
(uncontrolled, fair-share, greedy-throughput), written to
``BENCH_control.json``.  Its gate asserts that turning the fair-share
control plane on never costs more than 5 % of the uncontrolled
aggregate throughput — the controller must be free when it has nothing
to say.  Each policy keeps the best of ``--repeats`` rounds, so the
ratio compares substrates, not scheduler jitter.

``--slo`` runs the *operability* axis: one instrumented daemon with the
admin endpoint attached, 16 concurrent echo flows, a live ``/metrics``
scrape and ``/healthz`` probe mid-load, a codec-queue-depth sampler,
and an offline resync-recovery measurement over a corrupted block
stream.  The measured values land under an ``"slo"`` key *merged into*
``BENCH_serve.json`` (alongside any scaling rounds already recorded)
together with the thresholds the gate enforced — p99 block codec
latency, queue-depth ceiling, resync recovery time, scrape latency —
so the artifact documents both the promise and the evidence.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--quick]
        [--backend thread|process|both]
        [--mib 8] [--shards N] [--out BENCH_serve.json]
        [--control] [--repeats 2] [--control-out BENCH_control.json]
        [--slo]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import threading
import time

from bench_pipeline import core_info, resolve_backends

from repro.data.corpus import Compressibility, generate
from repro.serve import ServeClient, ServeConfig, TransferServer

FLOW_COUNTS = (1, 4, 16)

#: Contended-fleet axis: enough flows to oversubscribe the capped pool.
CONTROL_FLOWS = 8
CONTROL_POLICIES = (None, "fair-share", "greedy-throughput")


def run_round(
    data: bytes,
    flows: int,
    codec_workers: int,
    backend: str = "thread",
    shards: int = 0,
    policy: str | None = None,
    control_interval: float = 1.0,
) -> dict:
    """One daemon, ``flows`` concurrent uploads; aggregate + per-flow stats."""
    server = TransferServer(
        ServeConfig(
            port=0,
            max_flows=flows + 4,
            codec_workers=codec_workers,
            codec_backend=backend,
            codec_shards=shards,
            policy=policy,
            control_interval=control_interval,
        )
    ).start()
    host, port = server.address
    results = [None] * flows
    errors: list = []

    def run(i: int) -> None:
        try:
            client = ServeClient(host, port, timeout=120.0)
            results[i] = client.upload(data, level="LIGHT")
        except Exception as exc:  # noqa: BLE001 - recorded for the gate
            errors.append(f"flow {i}: {exc!r}")

    threads = [threading.Thread(target=run, args=(i,)) for i in range(flows)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    # Read the *resolved* substrate shape off the live server: the
    # config value may be 0 (= auto), and recording that instead of
    # what actually ran made earlier artifacts unauditable.
    codec_workers_resolved = server.codec_workers
    codec_backend_resolved = server.codec_backend
    codec_shards_resolved = server.codec_shards
    rebalances = server.controller.rebalances if server.controller else 0
    server.stop(drain=True, timeout=30.0)

    flow_seconds = [r.seconds for r in results if r is not None]
    total_app = len(data) * len(flow_seconds)
    return {
        "flows": flows,
        "policy": policy or "uncontrolled",
        "rebalances": rebalances,
        "completed": len(flow_seconds),
        "codec_workers_resolved": codec_workers_resolved,
        "codec_backend": codec_backend_resolved,
        "codec_shards": codec_shards_resolved,
        "errors": errors,
        "server_failed_flows": server.flows_failed,
        "wall_seconds": round(wall, 4),
        "aggregate_mb_per_s": round(total_app / wall / 1e6, 2) if wall else 0.0,
        "per_flow_mb_per_s": round(len(data) / (sum(flow_seconds) / len(flow_seconds)) / 1e6, 2)
        if flow_seconds
        else 0.0,
        "flow_seconds_min": round(min(flow_seconds), 4) if flow_seconds else None,
        "flow_seconds_max": round(max(flow_seconds), 4) if flow_seconds else None,
        "codec_pool": server.codec_stats(),
        "buffer_pool": server.buffer_pool.stats(),
    }


def run_matrix(
    mib: int,
    codec_workers: int,
    flow_counts,
    backends=("thread",),
    shards: int = 0,
) -> dict:
    data = generate(Compressibility.MODERATE, mib * 2**20, seed=13)
    rounds = []
    for backend in backends:
        for flows in flow_counts:
            cell = run_round(data, flows, codec_workers, backend, shards)
            rounds.append(cell)
            print(
                f"  flows={flows:3d} {cell['codec_backend']:7s}  "
                f"aggregate {cell['aggregate_mb_per_s']:8.1f} MB/s  "
                f"wall {cell['wall_seconds']:.2f}s  "
                f"completed {cell['completed']}/{flows}",
                flush=True,
            )
    return {
        "meta": {
            "payload_mib_per_flow": mib,
            # Both sides of the auto-sizing: what was asked for (0 =
            # auto) and what every round's daemon actually ran with.
            "codec_workers_requested": codec_workers,
            "codec_workers_resolved": rounds[0]["codec_workers_resolved"]
            if rounds
            else None,
            "backends": sorted({c["codec_backend"] for c in rounds}),
            "codec_shards": rounds[0]["codec_shards"] if rounds else shards,
            **core_info(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "rounds": rounds,
    }


def _round(payload: dict, flows: int, backend: str) -> dict:
    for cell in payload["rounds"]:
        if cell["flows"] == flows and cell["codec_backend"] == backend:
            return cell
    raise KeyError(f"no round for flows={flows}/{backend}")


def check_gate(payload: dict) -> list[str]:
    """Return failure messages (empty = gate passed)."""
    failures = []
    for cell in payload["rounds"]:
        if cell["completed"] != cell["flows"] or cell["errors"]:
            failures.append(
                f"flows={cell['flows']}/{cell['codec_backend']}: only "
                f"{cell['completed']} of {cell['flows']} flows completed "
                f"verified ({cell['errors'][:2]})"
            )
        if cell["server_failed_flows"]:
            failures.append(
                f"flows={cell['flows']}/{cell['codec_backend']}: server "
                f"reported {cell['server_failed_flows']} failed flows"
            )
    if failures:
        return failures  # throughput ratios are meaningless on failures
    cores = payload["meta"]["usable_cores"]
    for backend in payload["meta"]["backends"]:
        base = _round(payload, 1, backend)["aggregate_mb_per_s"]
        if base <= 0:
            failures.append(
                f"{backend}: single-flow round produced no throughput sample"
            )
            continue
        sixteen = _round(payload, 16, backend)["aggregate_mb_per_s"]
        if sixteen < 0.25 * base:
            failures.append(
                f"{backend}: 16-flow aggregate collapsed: {sixteen:.1f} MB/s "
                f"vs {base:.1f} MB/s single-flow (floor 25%)"
            )
        if cores >= 2:
            four = _round(payload, 4, backend)["aggregate_mb_per_s"]
            if four < 0.6 * base:
                failures.append(
                    f"{backend}: 4-flow aggregate {four:.1f} MB/s below 60% "
                    f"of single-flow {base:.1f} MB/s with {cores} cores"
                )
    return failures


def run_control_matrix(
    mib: int,
    codec_workers: int,
    flow_count: int = CONTROL_FLOWS,
    policies=CONTROL_POLICIES,
    repeats: int = 2,
) -> dict:
    """Contended fleet, one best-of-``repeats`` round per fleet policy.

    The pool is capped at two workers regardless of the host so the
    flows genuinely contend, which is the regime the control plane
    exists for — on an idle many-core box the policies would never be
    asked to arbitrate anything.
    """
    data = generate(Compressibility.MODERATE, mib * 2**20, seed=13)
    workers = codec_workers or 2
    rounds = []
    for policy in policies:
        best = None
        for _ in range(max(1, repeats)):
            cell = run_round(
                data,
                flow_count,
                workers,
                policy=policy,
                control_interval=0.25,
            )
            if best is None or (
                not cell["errors"]
                and cell["aggregate_mb_per_s"] > best["aggregate_mb_per_s"]
            ):
                best = cell
        rounds.append(best)
        print(
            f"  policy={best['policy']:18s} aggregate "
            f"{best['aggregate_mb_per_s']:8.1f} MB/s  "
            f"wall {best['wall_seconds']:.2f}s  "
            f"rebalances {best['rebalances']}  "
            f"completed {best['completed']}/{flow_count}",
            flush=True,
        )
    return {
        "meta": {
            "axis": "contended-fleet",
            "payload_mib_per_flow": mib,
            "flow_count": flow_count,
            "codec_workers": workers,
            "repeats": repeats,
            **core_info(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "rounds": rounds,
    }


def _policy_round(payload: dict, policy: str) -> dict:
    for cell in payload["rounds"]:
        if cell["policy"] == policy:
            return cell
    raise KeyError(f"no round for policy={policy}")


def check_control_gate(payload: dict) -> list[str]:
    """Return failure messages for the contended-fleet axis."""
    failures = []
    for cell in payload["rounds"]:
        if cell["completed"] != cell["flows"] or cell["errors"]:
            failures.append(
                f"policy={cell['policy']}: only {cell['completed']} of "
                f"{cell['flows']} flows completed verified "
                f"({cell['errors'][:2]})"
            )
        if cell["server_failed_flows"]:
            failures.append(
                f"policy={cell['policy']}: server reported "
                f"{cell['server_failed_flows']} failed flows"
            )
    if failures:
        return failures
    base = _policy_round(payload, "uncontrolled")["aggregate_mb_per_s"]
    if base <= 0:
        return ["uncontrolled round produced no throughput sample"]
    fair = _policy_round(payload, "fair-share")
    if fair["aggregate_mb_per_s"] < 0.95 * base:
        failures.append(
            f"fair-share collapsed the fleet: {fair['aggregate_mb_per_s']:.1f} "
            f"MB/s vs {base:.1f} MB/s uncontrolled (floor 95%)"
        )
    if fair["rebalances"] == 0:
        failures.append(
            "fair-share round recorded zero policy passes — the control "
            "plane never ran, so the ratio proves nothing"
        )
    return failures


# -- operability / SLO axis -----------------------------------------

SLO_FLOWS = 16

#: The service-level objectives the --slo gate enforces.  Deliberately
#: loose for shared CI runners: these catch order-of-magnitude
#: operability regressions (a stuck queue, a seconds-long block stall,
#: resync scanning the whole stream), not few-percent drift.
SLO_THRESHOLDS = {
    "p99_decode_seconds_max": 0.5,
    "p99_encode_seconds_max": 0.5,
    "queue_depth_max": 8 * SLO_FLOWS,
    "resync_recovery_seconds_max": 2.0,
    "resync_blocks_skipped_max": 2,
    "metrics_scrape_seconds_max": 2.0,
}


def measure_resync(mib: int) -> dict:
    """Corrupt one block mid-stream; time the full resync read.

    Returns recovery wall time plus the scanner's damage accounting —
    the operability question is "when a tenant ships us a damaged
    stream, how long until the daemon is decoding good blocks again,
    and how much does it lose?".
    """
    import io

    from repro.codecs.block import encode_block
    from repro.core.levels import default_level_table
    from repro.core.recovery import ResyncBlockReader

    data = generate(Compressibility.MODERATE, mib * 2**20, seed=29)
    codec = default_level_table().codec(1)
    block_size = 128 * 1024
    stream = io.BytesIO()
    offsets = []
    for off in range(0, len(data), block_size):
        offsets.append(stream.tell())
        block = encode_block(data[off : off + block_size], codec)
        stream.write(bytes(block.frame))
    # Flip one byte inside the payload of the middle block.
    raw = bytearray(stream.getvalue())
    victim = offsets[len(offsets) // 2] + 64
    raw[victim] ^= 0xFF
    reader = ResyncBlockReader(io.BytesIO(bytes(raw)))
    t0 = time.perf_counter()
    recovered = sum(len(chunk) for chunk in reader)
    recovery_seconds = time.perf_counter() - t0
    return {
        "stream_bytes": len(raw),
        "blocks_written": len(offsets),
        "recovery_seconds": round(recovery_seconds, 4),
        "blocks_skipped": reader.blocks_skipped,
        "bytes_skipped": reader.bytes_skipped,
        "bytes_recovered": recovered,
    }


def run_slo(mib: int, codec_workers: int, flows: int = SLO_FLOWS) -> dict:
    """One instrumented daemon + admin endpoint under ``flows`` echo flows."""
    from repro.serve import AdminServer
    from repro.telemetry import instrumented

    data = generate(Compressibility.MODERATE, mib * 2**20, seed=13)
    with instrumented() as session:
        server = TransferServer(
            ServeConfig(
                port=0,
                max_flows=flows + 4,
                codec_workers=codec_workers,
                epoch_seconds=0.1,
            )
        ).start()
        admin = AdminServer(server, port=0, registry=session.registry).start()
        host, port = server.address
        base = "http://%s:%s" % admin.address

        depth_samples: list[int] = []
        stop = threading.Event()

        def poll_depth() -> None:
            while not stop.is_set():
                depth_samples.append(server.codec_stats()["queued"])
                time.sleep(0.005)

        results = [None] * flows
        errors: list[str] = []

        def run(i: int) -> None:
            try:
                client = ServeClient(host, port, timeout=120.0)
                results[i] = client.echo(data)
            except Exception as exc:  # noqa: BLE001 - recorded for the gate
                errors.append(f"flow {i}: {exc!r}")

        poller = threading.Thread(target=poll_depth, daemon=True)
        poller.start()
        threads = [threading.Thread(target=run, args=(i,)) for i in range(flows)]
        t0 = time.perf_counter()
        for t in threads:
            t.start()

        # Probe the admin endpoint *while* the fleet streams: the SLO
        # includes "a scrape under full load returns promptly".
        import json as _json
        import urllib.error
        import urllib.request

        time.sleep(0.2)
        s0 = time.perf_counter()
        metrics_text = (
            urllib.request.urlopen(base + "/metrics", timeout=30).read().decode()
        )
        scrape_seconds = time.perf_counter() - s0
        try:
            with urllib.request.urlopen(base + "/healthz", timeout=30) as resp:
                healthz_status = resp.status
                healthz_body = _json.load(resp)
        except urllib.error.HTTPError as exc:  # 503 still carries a body
            healthz_status = exc.code
            healthz_body = _json.load(exc)
        flow_series_at_scrape = metrics_text.count(
            "repro_serve_flow_app_rate_bytes_per_second{"
        )

        for t in threads:
            t.join()
        wall = time.perf_counter() - t0
        stop.set()
        poller.join(timeout=2.0)

        decode_p99 = session.registry.histogram("span.serve.decode.seconds").percentile(99)
        encode_p99 = session.registry.histogram("span.serve.encode.seconds").percentile(99)
        decode_count = session.registry.histogram("span.serve.decode.seconds").count
        admin.close()
        server.stop(drain=True, timeout=30.0)

    completed = sum(1 for r in results if r is not None and r.trailer.get("ok"))
    return {
        "flows": flows,
        "payload_mib_per_flow": mib,
        "completed": completed,
        "errors": errors,
        "server_failed_flows": server.flows_failed,
        "internal_errors": server.internal_errors,
        "wall_seconds": round(wall, 4),
        "aggregate_mb_per_s": round(len(data) * completed / wall / 1e6, 2),
        "p99_decode_seconds": round(decode_p99, 6),
        "p99_encode_seconds": round(encode_p99, 6),
        "decode_spans_observed": decode_count,
        "queue_depth_max": max(depth_samples) if depth_samples else 0,
        "queue_depth_samples": len(depth_samples),
        "metrics_scrape_seconds": round(scrape_seconds, 4),
        "metrics_bytes": len(metrics_text),
        "flow_series_at_scrape": flow_series_at_scrape,
        "healthz_status_under_load": healthz_status,
        "healthz_ready_under_load": bool(healthz_body.get("ready")),
        "resync": measure_resync(max(1, mib // 2)),
        "thresholds": dict(SLO_THRESHOLDS),
    }


def check_slo_gate(slo: dict) -> list[str]:
    """Return failure messages for the operability axis."""
    failures = []
    t = slo["thresholds"]
    if slo["completed"] != slo["flows"] or slo["errors"]:
        failures.append(
            f"slo: only {slo['completed']} of {slo['flows']} flows completed "
            f"verified ({slo['errors'][:2]})"
        )
    if slo["server_failed_flows"]:
        failures.append(
            f"slo: server reported {slo['server_failed_flows']} failed flows"
        )
    if slo["healthz_status_under_load"] != 200 or not slo["healthz_ready_under_load"]:
        failures.append(
            f"slo: /healthz under load returned "
            f"{slo['healthz_status_under_load']} (ready="
            f"{slo['healthz_ready_under_load']}); a serving daemon must probe ready"
        )
    if slo["flow_series_at_scrape"] == 0:
        failures.append(
            "slo: mid-load /metrics scrape carried no per-flow gauge series"
        )
    if slo["p99_decode_seconds"] > t["p99_decode_seconds_max"]:
        failures.append(
            f"slo: p99 decode block latency {slo['p99_decode_seconds']:.3f}s "
            f"exceeds {t['p99_decode_seconds_max']}s"
        )
    if slo["p99_encode_seconds"] > t["p99_encode_seconds_max"]:
        failures.append(
            f"slo: p99 encode block latency {slo['p99_encode_seconds']:.3f}s "
            f"exceeds {t['p99_encode_seconds_max']}s"
        )
    if slo["queue_depth_max"] > t["queue_depth_max"]:
        failures.append(
            f"slo: codec queue depth peaked at {slo['queue_depth_max']} "
            f"(ceiling {t['queue_depth_max']}) — backpressure is not bounding "
            f"the shared queue"
        )
    if slo["metrics_scrape_seconds"] > t["metrics_scrape_seconds_max"]:
        failures.append(
            f"slo: /metrics scrape took {slo['metrics_scrape_seconds']:.2f}s "
            f"under load (max {t['metrics_scrape_seconds_max']}s)"
        )
    resync = slo["resync"]
    if resync["recovery_seconds"] > t["resync_recovery_seconds_max"]:
        failures.append(
            f"slo: resync over a corrupted stream took "
            f"{resync['recovery_seconds']:.2f}s "
            f"(max {t['resync_recovery_seconds_max']}s)"
        )
    if resync["blocks_skipped"] > t["resync_blocks_skipped_max"]:
        failures.append(
            f"slo: resync lost {resync['blocks_skipped']} blocks to one "
            f"flipped byte (max {t['resync_blocks_skipped_max']})"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small per-flow payload, gate enforced",
    )
    parser.add_argument("--mib", type=int, default=None, help="payload MiB per flow")
    parser.add_argument(
        "--workers", type=int, default=0, help="shared codec workers (0 = auto)"
    )
    parser.add_argument(
        "--backend",
        choices=["thread", "process", "both"],
        default="thread",
        help="codec executor backend ('both' records the crossover)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="process-backend codec shards (0 = one per codec worker)",
    )
    parser.add_argument("--out", default="BENCH_serve.json", help="JSON output path")
    parser.add_argument(
        "--control",
        action="store_true",
        help="run the contended-fleet policy axis instead of the scaling matrix",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="control axis: rounds per policy, best kept",
    )
    parser.add_argument(
        "--control-out",
        default="BENCH_control.json",
        help="control-axis JSON output path",
    )
    parser.add_argument(
        "--slo",
        action="store_true",
        help="run the operability axis (admin endpoint under load, codec "
        "latency/queue SLOs, resync recovery); merges an 'slo' key into --out",
    )
    args = parser.parse_args(argv)

    mib = args.mib or (2 if args.quick else 8)
    if args.slo:
        print(
            f"operability SLO run: {mib} MiB/flow, {SLO_FLOWS} echo flows, "
            f"admin endpoint attached, usable cores="
            f"{core_info()['usable_cores']}",
            flush=True,
        )
        slo = run_slo(mib, args.workers)
        print(
            f"  p99 decode {slo['p99_decode_seconds']*1e3:8.2f} ms  "
            f"p99 encode {slo['p99_encode_seconds']*1e3:8.2f} ms  "
            f"queue max {slo['queue_depth_max']:4d}  "
            f"scrape {slo['metrics_scrape_seconds']*1e3:6.1f} ms  "
            f"resync {slo['resync']['recovery_seconds']*1e3:6.1f} ms",
            flush=True,
        )
        try:
            with open(args.out) as fp:
                payload = json.load(fp)
        except (OSError, json.JSONDecodeError):
            payload = {"meta": {**core_info(), "python": platform.python_version()}}
        payload["slo"] = slo
        with open(args.out, "w") as fp:
            json.dump(payload, fp, indent=2)
        print(f"slo section merged into {args.out}")
        failures = check_slo_gate(slo)
        for failure in failures:
            print(f"GATE FAIL: {failure}", file=sys.stderr)
        if not failures:
            print("gate passed")
        return 1 if failures else 0

    if args.control:
        print(
            f"contended-fleet benchmark: {mib} MiB/flow, "
            f"{CONTROL_FLOWS} flows on a capped pool, "
            f"policies={[p or 'uncontrolled' for p in CONTROL_POLICIES]}, "
            f"usable cores={core_info()['usable_cores']}",
            flush=True,
        )
        payload = run_control_matrix(mib, args.workers, repeats=args.repeats)
        with open(args.control_out, "w") as fp:
            json.dump(payload, fp, indent=2)
        print(f"matrix written to {args.control_out}")
        failures = check_control_gate(payload)
        for failure in failures:
            print(f"GATE FAIL: {failure}", file=sys.stderr)
        if not failures:
            print("gate passed")
        return 1 if failures else 0

    backends = resolve_backends(args.backend)
    print(
        f"serve benchmark: {mib} MiB/flow at {FLOW_COUNTS} concurrent flows, "
        f"backends={'/'.join(backends)}, "
        f"usable cores={core_info()['usable_cores']}",
        flush=True,
    )
    payload = run_matrix(mib, args.workers, FLOW_COUNTS, backends, args.shards)
    with open(args.out, "w") as fp:
        json.dump(payload, fp, indent=2)
    print(f"matrix written to {args.out}")

    failures = check_gate(payload)
    for failure in failures:
        print(f"GATE FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("gate passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
