"""Throughput matrix for the parallel receive-path decode pipeline.

Standalone companion to ``bench_pipeline.py`` for the other direction:
it pre-encodes one framed stream per (compressibility class, level)
cell, then times the serial :class:`~repro.codecs.block.BlockReader`
against :class:`~repro.core.pipeline.ParallelBlockDecoder` at 1/2/4/8
workers, writes the matrix to ``BENCH_decode.json``, and — in
``--quick`` mode — enforces the CI regression gate.

The gate is core-aware, mirroring the encode benchmark:

* Any box: the pipeline at **1 worker** must keep >= 95 % of serial
  decode throughput (the fetch/queue/reassemble machinery may cost at
  most 5 %).
* >= 2 usable cores: 4-worker MEDIUM decode on compressible data must
  not fall below serial.
* >= 4 usable cores and not ``--quick``: additionally assert the
  headline >= 1.8x speedup at 4 workers for the CPU-bound levels
  (MEDIUM/HEAVY) on HIGH/MODERATE data.

``--backend both`` additionally decodes every parallel cell on the
multiprocess shared-memory pool (:mod:`repro.core.procpool`) and gates
the threads-vs-processes crossover at MEDIUM/4-workers: >= 90 % of
thread throughput below 4 cores, at least parity at >= 4 cores.  The
1-worker overhead floor applies to the thread backend only — a
1-worker process cell pays IPC by construction and is covered by the
crossover gate instead.

Usage::

    PYTHONPATH=src python benchmarks/bench_decode.py [--quick]
        [--backend thread|process|both]
        [--mib 16] [--repeats 3] [--out BENCH_decode.json]
"""

from __future__ import annotations

import argparse
import io
import json
import platform
import sys
import time

from repro.codecs.block import BlockReader, BlockWriter
from repro.codecs.bz2_codec import Bz2Codec
from repro.codecs.lzma_codec import LzmaCodec
from repro.codecs.null_codec import NullCodec
from repro.codecs.zlib_codec import LightZlibCodec
from repro.core.buffers import BufferPool
from repro.core.pipeline import ParallelBlockDecoder
from repro.data.corpus import Compressibility, generate

from repro.core.procpool import CodecProcessPool, process_backend_available

from bench_pipeline import core_info, resolve_backends, usable_cores

BLOCK_SIZE = 128 * 1024

LEVELS = (
    ("NO", NullCodec),
    ("LIGHT", LightZlibCodec),
    ("MEDIUM", Bz2Codec),
    ("HEAVY", lambda: LzmaCodec(preset=4)),
)

WORKER_COUNTS = (1, 2, 4, 8)


def encode_stream(data: bytes, codec) -> bytes:
    """Frame ``data`` into one serial block stream."""
    sink = io.BytesIO()
    writer = BlockWriter(sink)
    with memoryview(data) as view:
        for offset in range(0, len(data), BLOCK_SIZE):
            writer.write_block(view[offset : offset + BLOCK_SIZE], codec)
    return sink.getvalue()


def one_pass(
    stream: bytes, workers: int, backend: str = "thread", codec_pool=None
) -> tuple[float, int]:
    """Decode ``stream`` once; (seconds, plaintext bytes).

    ``workers=0`` selects the serial :class:`BlockReader` baseline;
    any other count runs the :class:`ParallelBlockDecoder` so the
    1-worker cell measures the pipeline machinery's own overhead.
    ``codec_pool`` shares one pre-started pool across repeats so a
    process-backend cell times steady state, not worker process boot.
    """
    source = io.BytesIO(stream)
    pool = BufferPool()
    if workers == 0:
        decoder = BlockReader(source, pool=pool)
    else:
        decoder = ParallelBlockDecoder(
            source, workers=workers, backend=backend, pool=pool, codec_pool=codec_pool
        )
    out = 0
    t0 = time.perf_counter()
    for block in decoder:
        out += len(block)
    elapsed = time.perf_counter() - t0
    decoder.close()
    return elapsed, out


def run_matrix(
    mib: int, repeats: int, worker_counts, levels, classes, backends=("thread",)
) -> dict:
    """Best-of-``repeats`` seconds for every matrix cell."""
    total = mib * 2**20
    results = []
    for cls in classes:
        data = generate(cls, total, seed=11)
        for level_name, codec_factory in levels:
            codec = codec_factory()
            stream = encode_stream(data, codec)
            serial_s, out = min(
                (one_pass(stream, 0) for _ in range(repeats)),
                key=lambda pair: pair[0],
            )
            assert out == total, "serial decode lost bytes"
            base = {
                "class": cls.value,
                "level": level_name,
                "codec": codec.name,
                "wire_mib": round(len(stream) / 2**20, 2),
            }
            results.append(
                {
                    **base,
                    "workers": 0,
                    "backend": "serial",
                    "seconds": round(serial_s, 4),
                    "mb_per_s": round(total / serial_s / 1e6, 2),
                    "speedup_vs_serial": 1.0,
                }
            )
            print(
                f"  {cls.value:8s} {level_name:6s} serial     "
                f"{total / serial_s / 1e6:8.1f} MB/s",
                flush=True,
            )
            for workers in worker_counts:
                for backend in backends:
                    shared = None
                    if backend == "process":
                        shared = CodecProcessPool(workers)
                        # Boot pass (not measured): worker start-up.
                        one_pass(stream, workers, backend, shared)
                    best_s, out = min(
                        (
                            one_pass(stream, workers, backend, shared)
                            for _ in range(repeats)
                        ),
                        key=lambda pair: pair[0],
                    )
                    if shared is not None:
                        shared.close()
                    assert out == total, (
                        f"parallel decode lost bytes at {workers}/{backend}"
                    )
                    cell = {
                        **base,
                        "workers": workers,
                        "backend": backend,
                        "seconds": round(best_s, 4),
                        "mb_per_s": round(total / best_s / 1e6, 2),
                        "speedup_vs_serial": round(serial_s / best_s, 3),
                    }
                    results.append(cell)
                    print(
                        f"  {cls.value:8s} {level_name:6s} workers={workers} "
                        f"{backend:7s}  "
                        f"{cell['mb_per_s']:8.1f} MB/s  "
                        f"speedup {cell['speedup_vs_serial']:.2f}x",
                        flush=True,
                    )
    return {
        "meta": {
            "block_size": BLOCK_SIZE,
            "payload_mib": mib,
            "repeats": repeats,
            "backends": list(backends),
            "process_backend_available": process_backend_available(),
            **core_info(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "results": results,
    }


def _cell(
    payload: dict, cls: str, level: str, workers: int, backend: str = "thread"
) -> dict:
    for cell in payload["results"]:
        if (
            cell["class"] == cls
            and cell["level"] == level
            and cell["workers"] == workers
            and cell.get("backend", "thread") == backend
        ):
            return cell
    raise KeyError(f"no cell for {cls}/{level}/workers={workers}/{backend}")


def check_backend_gate(payload: dict) -> list[str]:
    """Threads-vs-processes decode gate at MEDIUM/4-workers.

    Mirrors the encode benchmark: >= 90 % of thread throughput below 4
    cores (the IPC/staging overhead bound), parity or better at >= 4
    cores where the process pool escapes the GIL.
    """
    cores = payload["meta"]["usable_cores"]
    failures = []
    for cls in ("HIGH", "MODERATE"):
        try:
            thread = _cell(payload, cls, "MEDIUM", 4, "thread")
            proc = _cell(payload, cls, "MEDIUM", 4, "process")
        except KeyError:
            continue
        ratio = proc["mb_per_s"] / thread["mb_per_s"] if thread["mb_per_s"] else 0.0
        if cores >= 4 and ratio < 1.0:
            failures.append(
                f"{cls}/MEDIUM: process decode slower than threads "
                f"({ratio:.2f}x) with {cores} cores available"
            )
        elif cores < 4 and ratio < 0.90:
            failures.append(
                f"{cls}/MEDIUM: process-decode overhead above 10% of "
                f"threads ({ratio:.2f}x) on {cores} core(s)"
            )
    return failures


def check_gate(payload: dict, *, quick: bool) -> list[str]:
    """Return failure messages (empty = gate passed)."""
    cores = payload["meta"]["usable_cores"]
    failures = []
    for cls in ("HIGH", "MODERATE"):
        for level in ("MEDIUM", "HEAVY"):
            try:
                one = _cell(payload, cls, level, 1)
            except KeyError:
                continue
            # Overhead floor holds on any box, 1 core included: at one
            # worker nothing overlaps, so this isolates the pipeline
            # machinery's own cost.
            if one["speedup_vs_serial"] < 0.95:
                failures.append(
                    f"{cls}/{level}: 1-worker pipeline overhead above 5% "
                    f"({one['speedup_vs_serial']:.3f}x of serial)"
                )
            try:
                four = _cell(payload, cls, level, 4)
            except KeyError:
                continue
            speedup = four["speedup_vs_serial"]
            if cores >= 2 and speedup < 1.0:
                failures.append(
                    f"{cls}/{level}: 4 workers below serial ({speedup:.2f}x) "
                    f"with {cores} cores available"
                )
            if not quick and cores >= 4 and speedup < 1.8:
                failures.append(
                    f"{cls}/{level}: expected >=1.8x at 4 workers with "
                    f"{cores} cores, got {speedup:.2f}x"
                )
    failures.extend(check_backend_gate(payload))
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small payload, MEDIUM level only, gate enforced",
    )
    parser.add_argument("--mib", type=int, default=None, help="payload MiB per class")
    parser.add_argument("--repeats", type=int, default=None, help="passes per cell")
    parser.add_argument(
        "--backend",
        choices=["thread", "process", "both"],
        default="thread",
        help="codec backend axis ('both' records the crossover)",
    )
    parser.add_argument("--out", default="BENCH_decode.json", help="JSON output path")
    args = parser.parse_args(argv)
    backends = resolve_backends(args.backend)

    if args.quick:
        mib = args.mib or 4
        repeats = args.repeats or 3
        worker_counts = (1, 4)
        levels = [lv for lv in LEVELS if lv[0] == "MEDIUM"]
        classes = (Compressibility.HIGH, Compressibility.MODERATE)
    else:
        mib = args.mib or 16
        repeats = args.repeats or 3
        worker_counts = WORKER_COUNTS
        levels = LEVELS
        classes = tuple(Compressibility)

    print(
        f"decode benchmark: {mib} MiB/class, repeats={repeats}, "
        f"backends={'/'.join(backends)}, usable cores={usable_cores()}",
        flush=True,
    )
    payload = run_matrix(mib, repeats, worker_counts, levels, classes, backends)
    with open(args.out, "w") as fp:
        json.dump(payload, fp, indent=2)
    print(f"matrix written to {args.out}")

    failures = check_gate(payload, quick=args.quick)
    for failure in failures:
        print(f"GATE FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("gate passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
