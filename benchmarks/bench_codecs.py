"""Micro-benchmarks of the real codecs per compressibility class.

These are the numbers behind the simulator's codec model: compression
throughput and achieved ratio of each ladder level on each synthetic
workload class.  The assertions pin the *ordering* the decision
algorithm depends on (levels ordered by time/compression ratio).
"""

from __future__ import annotations

import pytest

from repro.codecs import LightZlibCodec, LzmaCodec, MediumZlibCodec, NullCodec
from repro.data import Compressibility, generate

PAYLOAD_BYTES = 512 * 1024

CODECS = {
    "NO": NullCodec(),
    "LIGHT": LightZlibCodec(),
    "MEDIUM": MediumZlibCodec(),
    "HEAVY": LzmaCodec(preset=4),
}


@pytest.fixture(scope="module")
def payloads():
    return {cls: generate(cls, PAYLOAD_BYTES, seed=17) for cls in Compressibility}


@pytest.mark.parametrize("level", list(CODECS))
@pytest.mark.parametrize("cls", list(Compressibility), ids=lambda c: c.value)
def test_bench_compress(benchmark, payloads, level, cls):
    codec = CODECS[level]
    payload = payloads[cls]
    compressed = benchmark(codec.compress, payload)
    ratio = len(compressed) / len(payload)
    benchmark.extra_info["ratio"] = round(ratio, 3)
    benchmark.extra_info["mb_per_s"] = round(
        PAYLOAD_BYTES / 1e6 / benchmark.stats.stats.mean, 1
    )
    if level == "NO":
        assert ratio == 1.0
    elif cls is Compressibility.LOW:
        assert ratio > 0.85
    else:
        assert ratio < 0.6


@pytest.mark.parametrize("level", ["LIGHT", "MEDIUM", "HEAVY"])
@pytest.mark.parametrize("cls", list(Compressibility), ids=lambda c: c.value)
def test_bench_decompress(benchmark, payloads, level, cls):
    codec = CODECS[level]
    compressed = codec.compress(payloads[cls])
    restored = benchmark(codec.decompress, compressed)
    assert restored == payloads[cls]


def test_ladder_ordering_on_text(payloads):
    """The property Section III-A requires of any level table."""
    payload = payloads[Compressibility.MODERATE]
    sizes = [len(CODECS[n].compress(payload)) for n in ("NO", "LIGHT", "MEDIUM", "HEAVY")]
    assert sizes[0] > sizes[1] > sizes[2] > sizes[3]
