"""Ablation: dead-band parameter alpha sweep (Section III-A choice)."""

from repro.experiments import ablations

from conftest import run_experiment_benchmark


def test_bench_ablation_alpha(benchmark, scale):
    run_experiment_benchmark(benchmark, ablations.run_alpha, scale=scale, repeats=2)
