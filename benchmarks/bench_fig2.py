"""Regenerate Figure 2: network throughput distributions per platform."""

from repro.experiments import fig2_net_throughput

from conftest import run_experiment_benchmark


def test_bench_fig2(benchmark, scale):
    run_experiment_benchmark(benchmark, fig2_net_throughput.run, scale=scale)
