"""Shared benchmark configuration.

Every paper artifact has a ``bench_*`` file here.  The benchmark body
runs the corresponding experiment once (``rounds=1`` — these are
macro-benchmarks of a deterministic simulation, not micro-timings),
prints the rendered artifact so the run doubles as the reproduction
record, and asserts the experiment's shape checks.

``REPRO_BENCH_SCALE`` (default 0.1) scales data volumes relative to the
paper's 50 GB; set it to 1.0 to regenerate the tables and figures at
full scale.
"""

from __future__ import annotations

import os

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))


@pytest.fixture(scope="session")
def scale() -> float:
    return SCALE


def run_experiment_benchmark(benchmark, run_fn, **kwargs):
    """Run one experiment under pytest-benchmark and validate shapes."""
    result = benchmark.pedantic(
        lambda: run_fn(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(result.render())
    assert result.ok, f"{result.experiment_id} failed shapes: {result.failures}"
    return result
