"""Ablation: exponential backoff on/off (Section III-A design choice)."""

from repro.experiments import ablations

from conftest import run_experiment_benchmark


def test_bench_ablation_backoff(benchmark, scale):
    run_experiment_benchmark(benchmark, ablations.run_backoff, scale=scale, repeats=2)
