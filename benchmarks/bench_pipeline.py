"""Throughput matrix for the parallel block-compression pipeline.

Standalone script (not a pytest-benchmark file): it times the serial
:class:`~repro.codecs.block.BlockWriter` against
:class:`~repro.core.pipeline.ParallelBlockEncoder` at 2/4/8 workers,
over the paper's four compression levels and three compressibility
classes, writes the full matrix to ``BENCH_pipeline.json``, and — in
``--quick`` mode — enforces the CI regression gate.

The gate is core-aware because threads can only buy throughput where
there are cores to run them:

* >= 2 usable cores (every hosted CI runner): 4-worker MEDIUM on
  compressible data must not fall below the serial baseline.
* 1 usable core: nothing can overlap, so the gate degrades to an
  overhead floor — the pipeline must keep >= 75 % of serial throughput.
* >= 4 usable cores and not ``--quick``: additionally assert the
  headline >= 2x speedup for 4-worker MEDIUM on compressible data.

``--backend both`` adds a process-backend pass per cell (the
multiprocess shared-memory codec pool of :mod:`repro.core.procpool`)
so the JSON records the threads-vs-processes crossover.  Its gate at
MEDIUM/4-workers: processes must reach >= 90 % of thread throughput
below 4 cores (IPC overhead bound) and beat threads at >= 4 cores
(where the GIL caps the thread pipeline but not the process one).

Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline.py [--quick]
        [--backend thread|process|both]
        [--mib 16] [--repeats 3] [--out BENCH_pipeline.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

from repro.codecs.bz2_codec import Bz2Codec
from repro.codecs.lzma_codec import LzmaCodec
from repro.codecs.null_codec import NullCodec
from repro.codecs.zlib_codec import LightZlibCodec
from repro.core.pipeline import make_block_encoder
from repro.core.procpool import (
    CodecProcessPool,
    process_backend_available,
    process_backend_reason,
)
from repro.data.corpus import Compressibility, generate

BLOCK_SIZE = 128 * 1024

#: The paper's ladder, with bz2 as MEDIUM: unlike zlib-6 (which is so
#: fast the framing overhead dominates), bz2 is CPU-bound at 128 KB
#: blocks, so MEDIUM is where a parallel pipeline should visibly pay.
LEVELS = (
    ("NO", NullCodec),
    ("LIGHT", LightZlibCodec),
    ("MEDIUM", Bz2Codec),
    ("HEAVY", lambda: LzmaCodec(preset=4)),
)

WORKER_COUNTS = (1, 2, 4, 8)


class NullSink:
    """Counting sink that discards frames (isolates compression cost)."""

    def __init__(self) -> None:
        self.nbytes = 0

    def write(self, data) -> int:
        n = data.nbytes if isinstance(data, memoryview) else len(data)
        self.nbytes += n
        return n


def core_info() -> dict:
    """Affinity-aware core detection, with the raw inputs preserved.

    ``sched_getaffinity`` is the truth when it works (it sees cgroup
    pinning), but it is missing on some platforms and can fail inside
    exotic sandboxes — fall back to ``os.cpu_count()`` then, and record
    *both* numbers so a benchmark artifact can always be audited for
    which one drove the gate.
    """
    affinity = None
    if hasattr(os, "sched_getaffinity"):
        try:
            affinity = len(os.sched_getaffinity(0))
        except OSError:
            affinity = None
    cpu_count = os.cpu_count() or 1
    return {
        "affinity_cores": affinity,
        "cpu_count": cpu_count,
        "usable_cores": affinity if affinity is not None else cpu_count,
    }


def usable_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    return core_info()["usable_cores"]


def resolve_backends(requested: str) -> tuple:
    """Map ``--backend`` to the list of backends actually measurable.

    A requested process backend on a box without usable shared memory
    is *dropped with a warning* rather than silently measured as
    threads — mislabelled cells would poison the crossover record.
    """
    backends = ("thread", "process") if requested == "both" else (requested,)
    if "process" in backends and not process_backend_available():
        print(
            f"WARNING: process backend unavailable "
            f"({process_backend_reason()}); measuring threads only",
            file=sys.stderr,
        )
        backends = tuple(b for b in backends if b != "process")
    return backends or ("thread",)


def one_pass(
    data: bytes, workers: int, codec, backend: str = "thread", codec_pool=None
) -> tuple[float, int]:
    """Push ``data`` through the encoder once; (seconds, wire bytes).

    ``codec_pool`` shares one pre-started pool across repeats so a
    process-backend cell times steady-state throughput, not worker
    process boot (pools are long-lived in every real deployment).
    """
    sink = NullSink()
    encoder = make_block_encoder(
        sink, workers=workers, backend=backend, codec_pool=codec_pool
    )
    t0 = time.perf_counter()
    with memoryview(data) as view:
        for offset in range(0, len(data), BLOCK_SIZE):
            encoder.write_block(view[offset : offset + BLOCK_SIZE], codec)
        encoder.flush()
    elapsed = time.perf_counter() - t0
    encoder.close()
    return elapsed, sink.nbytes


def run_matrix(
    mib: int, repeats: int, worker_counts, levels, classes, backends=("thread",)
) -> dict:
    """Best-of-``repeats`` seconds for every matrix cell.

    The serial baseline every speedup is measured against is the
    1-worker *thread* cell (which ``make_block_encoder`` resolves to
    the plain serial :class:`BlockWriter`), so thread and process cells
    of one (class, level) share a single denominator and the crossover
    can be read straight off ``speedup_vs_serial``.
    """
    total = mib * 2**20
    results = []
    for cls in classes:
        data = generate(cls, total, seed=11)
        for level_name, codec_factory in levels:
            codec = codec_factory()
            serial_s = None
            for workers in worker_counts:
                for backend in backends:
                    shared = None
                    if backend == "process":
                        shared = CodecProcessPool(workers)
                        # Boot pass: the first submit to a fresh pool
                        # waits on worker start-up, which must not land
                        # in any measured repeat.
                        one_pass(data[:BLOCK_SIZE], workers, codec, backend, shared)
                    best_s, wire = min(
                        (
                            one_pass(data, workers, codec, backend, shared)
                            for _ in range(repeats)
                        ),
                        key=lambda pair: pair[0],
                    )
                    if shared is not None:
                        shared.close()
                    if workers == 1 and backend == "thread":
                        serial_s = best_s
                    cell = {
                        "class": cls.value,
                        "level": level_name,
                        "codec": codec.name,
                        "workers": workers,
                        "backend": backend,
                        "seconds": round(best_s, 4),
                        "mb_per_s": round(total / best_s / 1e6, 2),
                        "ratio": round(wire / total, 4),
                        "speedup_vs_serial": round(serial_s / best_s, 3)
                        if serial_s
                        else 1.0,
                    }
                    results.append(cell)
                    print(
                        f"  {cls.value:8s} {level_name:6s} workers={workers} "
                        f"{backend:7s}  "
                        f"{cell['mb_per_s']:8.1f} MB/s  "
                        f"speedup {cell['speedup_vs_serial']:.2f}x",
                        flush=True,
                    )
    return {
        "meta": {
            "block_size": BLOCK_SIZE,
            "payload_mib": mib,
            "repeats": repeats,
            "backends": list(backends),
            "process_backend_available": process_backend_available(),
            **core_info(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "results": results,
    }


def _cell(
    payload: dict, cls: str, level: str, workers: int, backend: str = "thread"
) -> dict:
    for cell in payload["results"]:
        if (
            cell["class"] == cls
            and cell["level"] == level
            and cell["workers"] == workers
            and cell.get("backend", "thread") == backend
        ):
            return cell
    raise KeyError(f"no cell for {cls}/{level}/workers={workers}/{backend}")


def check_backend_gate(payload: dict) -> list[str]:
    """Threads-vs-processes gate at the MEDIUM/4-worker headline cell.

    Below 4 cores nothing can overlap enough for processes to win, so
    the gate is an IPC-overhead bound: >= 90 % of thread throughput.
    At >= 4 cores the process pool must actually beat the
    GIL-serialised thread pipeline.
    """
    cores = payload["meta"]["usable_cores"]
    failures = []
    for cls in ("HIGH", "MODERATE"):
        try:
            thread = _cell(payload, cls, "MEDIUM", 4, "thread")
            proc = _cell(payload, cls, "MEDIUM", 4, "process")
        except KeyError:
            continue
        ratio = proc["mb_per_s"] / thread["mb_per_s"] if thread["mb_per_s"] else 0.0
        if cores >= 4 and ratio < 1.0:
            failures.append(
                f"{cls}/MEDIUM: process backend slower than threads "
                f"({ratio:.2f}x) with {cores} cores available"
            )
        elif cores < 4 and ratio < 0.90:
            failures.append(
                f"{cls}/MEDIUM: process-backend overhead above 10% of "
                f"threads ({ratio:.2f}x) on {cores} core(s)"
            )
    return failures


def check_gate(payload: dict, *, quick: bool) -> list[str]:
    """Return failure messages (empty = gate passed)."""
    cores = payload["meta"]["usable_cores"]
    failures = []
    for cls in ("HIGH", "MODERATE"):
        try:
            four = _cell(payload, cls, "MEDIUM", 4)
        except KeyError:
            continue
        speedup = four["speedup_vs_serial"]
        if cores >= 2 and speedup < 1.0:
            failures.append(
                f"{cls}/MEDIUM: 4 workers below serial ({speedup:.2f}x) "
                f"with {cores} cores available"
            )
        elif cores < 2 and speedup < 0.75:
            failures.append(
                f"{cls}/MEDIUM: single-core pipeline overhead too high "
                f"({speedup:.2f}x of serial, floor is 0.75x)"
            )
        if not quick and cores >= 4 and speedup < 2.0:
            failures.append(
                f"{cls}/MEDIUM: expected >=2x at 4 workers with "
                f"{cores} cores, got {speedup:.2f}x"
            )
    failures.extend(check_backend_gate(payload))
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small payload, MEDIUM level only, gate enforced",
    )
    parser.add_argument("--mib", type=int, default=None, help="payload MiB per class")
    parser.add_argument("--repeats", type=int, default=None, help="passes per cell")
    parser.add_argument(
        "--backend",
        choices=["thread", "process", "both"],
        default="thread",
        help="codec backend axis ('both' records the crossover)",
    )
    parser.add_argument(
        "--out", default="BENCH_pipeline.json", help="JSON output path"
    )
    args = parser.parse_args(argv)
    backends = resolve_backends(args.backend)

    if args.quick:
        mib = args.mib or 4
        repeats = args.repeats or 2
        worker_counts = (1, 4)
        levels = [lv for lv in LEVELS if lv[0] == "MEDIUM"]
        classes = (Compressibility.HIGH, Compressibility.MODERATE)
    else:
        mib = args.mib or 16
        repeats = args.repeats or 3
        worker_counts = WORKER_COUNTS
        levels = LEVELS
        classes = tuple(Compressibility)

    print(
        f"pipeline benchmark: {mib} MiB/class, repeats={repeats}, "
        f"backends={'/'.join(backends)}, usable cores={usable_cores()}",
        flush=True,
    )
    payload = run_matrix(mib, repeats, worker_counts, levels, classes, backends)
    with open(args.out, "w") as fp:
        json.dump(payload, fp, indent=2)
    print(f"matrix written to {args.out}")

    failures = check_gate(payload, quick=args.quick)
    for failure in failures:
        print(f"GATE FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("gate passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
