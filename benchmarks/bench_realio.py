"""Real-socket end-to-end benchmark (extra; not a paper artifact).

Moves real bytes through real zlib/lzma over a real localhost TCP
connection behind a token-bucket "link", comparing the adaptive scheme
against static levels.  The shape to hold: on compressible data over a
slow link, the adaptive scheme's application rate beats the wire rate
by a multiple, and it never loses badly to the best static level.

GIL caveat (recorded in EXPERIMENTS.md): sender, receiver and codecs
share one CPython interpreter, so absolute rates undersell the paper's
Java implementation; relative behaviour is what this benchmark pins.
"""

from __future__ import annotations

import pytest

from repro.data import Compressibility, RepeatingSource, SyntheticCorpus
from repro.io import run_socket_transfer

TOTAL = 8_000_000
LINK_RATE = 5e6  # bytes/s "slow shared link"


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus(file_size=256 * 1024, seed=23)


def _source(corpus, cls):
    return RepeatingSource.from_corpus(cls, TOTAL, corpus)


@pytest.mark.parametrize("cls", list(Compressibility), ids=lambda c: c.value)
def test_bench_adaptive_socket_transfer(benchmark, corpus, cls):
    def transfer():
        return run_socket_transfer(
            _source(corpus, cls),
            rate_limit=LINK_RATE,
            block_size=64 * 1024,
            epoch_seconds=0.1,
        )

    result = benchmark.pedantic(transfer, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["app_mb_per_s"] = round(result.app_rate / 1e6, 1)
    benchmark.extra_info["ratio"] = round(result.compression_ratio, 3)
    assert result.receiver_bytes == TOTAL
    if cls is Compressibility.HIGH:
        # Compression must lift the application rate well above the wire.
        assert result.app_rate > 2 * LINK_RATE
    if cls is Compressibility.LOW:
        # Must not pay more than the header overhead for incompressible data.
        assert result.compression_ratio < 1.01


@pytest.mark.parametrize("level", [0, 1, 2, 3])
def test_bench_static_socket_transfer(benchmark, corpus, level):
    def transfer():
        return run_socket_transfer(
            _source(corpus, Compressibility.HIGH),
            static_level=level,
            rate_limit=LINK_RATE,
            block_size=64 * 1024,
        )

    result = benchmark.pedantic(transfer, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["app_mb_per_s"] = round(result.app_rate / 1e6, 1)
    assert result.receiver_bytes == TOTAL


@pytest.mark.parametrize("block_kb", [8, 32, 128, 512])
def test_bench_block_size_sweep(benchmark, corpus, block_kb):
    """Block-size trade-off on the real path: smaller blocks react
    faster and frame more often; larger blocks compress better.  The
    paper fixed 128 KB; this sweep shows the flat region around it."""

    def transfer():
        return run_socket_transfer(
            _source(corpus, Compressibility.MODERATE),
            rate_limit=LINK_RATE,
            block_size=block_kb * 1024,
            epoch_seconds=0.1,
        )

    result = benchmark.pedantic(transfer, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["app_mb_per_s"] = round(result.app_rate / 1e6, 1)
    benchmark.extra_info["ratio"] = round(result.compression_ratio, 3)
    assert result.receiver_bytes == TOTAL
