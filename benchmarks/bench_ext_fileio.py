"""Extension: adaptive compression on the file-write path (paper §VI
future work) — honest disk vs XEN write-back cache."""

from repro.experiments import extensions

from conftest import run_experiment_benchmark


def test_bench_ext_fileio(benchmark, scale):
    run_experiment_benchmark(benchmark, extensions.run_fileio, scale=scale, repeats=2)
