"""Ablation: displayed-metric skew and fluctuation sensitivity of
decision models (the Section II motivation, quantified)."""

from repro.experiments import ablations

from conftest import run_experiment_benchmark


def test_bench_ablation_metrics(benchmark, scale):
    run_experiment_benchmark(benchmark, ablations.run_metrics, scale=scale, repeats=2)
