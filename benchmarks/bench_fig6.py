"""Regenerate Figure 6: responsiveness to compressibility switches."""

from repro.experiments import fig6_changing_compressibility

from conftest import run_experiment_benchmark


def test_bench_fig6(benchmark, scale):
    run_experiment_benchmark(
        benchmark, fig6_changing_compressibility.run, scale=scale
    )
