"""Ablation: decision epoch length t sweep (paper default: 2 s)."""

from repro.experiments import ablations

from conftest import run_experiment_benchmark


def test_bench_ablation_t(benchmark, scale):
    run_experiment_benchmark(
        benchmark, ablations.run_epoch_length, scale=scale, repeats=2
    )
