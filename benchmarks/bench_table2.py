"""Regenerate Table II: completion times across classes, concurrency and
schemes — the paper's headline table."""

from repro.experiments import table2_completion_times

from conftest import run_experiment_benchmark


def test_bench_table2(benchmark, scale):
    run_experiment_benchmark(
        benchmark, table2_completion_times.run, scale=scale, repeats=3
    )
