"""Simulator-scale benchmark: engine throughput, allocator cost, fleets.

Standalone script (not a pytest-benchmark file) proving the thousand-flow
claims of the PR-10 simulator rewrite:

* **engine** — raw event throughput of the discrete-event core (timeout
  ping-pong, the dominant yield shape).
* **allocator** — the O(N log N) sorted-prefix water-fill of
  :mod:`repro.sim.link` against a frozen copy of the seed's iterative
  O(N²) fill, at 10/100/1000 flows.  Gate: >= 5x faster at 1000 flows.
* **link_churn** — end-to-end transmit/complete cycles through the live
  link (allocation + wake-timer management + completion delivery) at
  10/100/1000 concurrent flows.
* **fleet** — a 1000-flow open-loop fleet run
  (:class:`~repro.sim.fleet.FleetArrivalSpec`, softmax-modulated
  arrivals) under every allocation policy.  Gate: each arm completes
  under a hard wall-clock ceiling, so thousand-flow scenarios stay in
  CI budget.

Results go to ``BENCH_sim.json``; ``--quick`` is the CI mode (smaller
engine/churn passes, same 10/100/1000 axis, gates enforced).

Usage::

    PYTHONPATH=src python benchmarks/bench_sim.py [--quick]
        [--repeats 5] [--out BENCH_sim.json]
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import random
import sys
import time
from typing import Dict, List, Optional

from repro.data.corpus import Compressibility
from repro.sim import (
    Environment,
    FleetArrivalSpec,
    FleetFlowSpec,
    SharedLink,
    run_fleet_scenario,
)

FLOW_COUNTS = (10, 100, 1000)
POLICIES = (None, "fair-share", "greedy-throughput", "hill-climb")

#: Hard CI budget per 1000-flow fleet arm.  Measured ~1.3 s on a dev
#: container; the ceiling leaves >20x headroom for slow shared runners
#: while still catching a return to the seed's quadratic link work
#: (which did not finish in CI budget at all).
FLEET_WALL_CEILING_S = 30.0
ALLOCATOR_SPEEDUP_FLOOR = 5.0
ALLOCATOR_GATE_FLOWS = 1000


# ---------------------------------------------------------------------------
# Frozen seed allocator (the pre-PR-10 algorithm, kept for old-vs-new).
# ---------------------------------------------------------------------------


def seed_water_fill(active, capacity: float) -> Dict[int, float]:
    """Seed's restart-from-scratch weighted max-min fill (list.remove)."""
    alloc: Dict[int, float] = {}
    todo = list(active)
    cap = capacity
    while todo:
        total_weight = sum(f.weight for f in todo)
        capped = []
        for f in todo:
            share = cap * f.weight / total_weight
            if f.demand is not None and f.demand < share:
                capped.append(f)
        if not capped:
            for f in todo:
                alloc[id(f)] = cap * f.weight / total_weight
            break
        for f in capped:
            alloc[id(f)] = f.demand
            cap -= f.demand
            todo.remove(f)
        cap = max(cap, 0.0)
    return alloc


class _F:
    __slots__ = ("weight", "demand")

    def __init__(self, weight: float, demand: Optional[float]) -> None:
        self.weight = weight
        self.demand = demand


def make_fleet(n: int, rng: random.Random, capacity: float) -> List[_F]:
    """A fleet in the regime the fleet simulator actually produces.

    Most flows are CPU-bound (compression-limited), demanding *less*
    than their fair share of the link; a few are link-bound (no cap).
    Re-pricing such a fleet caps flows in cascading rounds — each round
    raises the fair share, which caps more flows — which is exactly
    where the seed's per-flow ``list.remove`` goes quadratic.
    """
    flows = []
    scale = capacity / n  # keep the per-flow demand/share ratio n-invariant
    for _ in range(n):
        weight = rng.choice((0.5, 1.0, 1.0, 1.5, 2.0))
        demand = None if rng.random() < 0.1 else rng.uniform(0.1, 2.0) * scale
        flows.append(_F(weight, demand))
    return flows


# ---------------------------------------------------------------------------
# Sections
# ---------------------------------------------------------------------------


def bench_engine(n_events: int) -> dict:
    """Timeout ping-pong: the engine's dominant event shape."""
    env = Environment()

    def ticker():
        for _ in range(n_events):
            yield env.timeout(1.0)

    env.process(ticker())
    t0 = time.perf_counter()
    env.run()
    seconds = time.perf_counter() - t0
    return {
        "events": env.events_processed,
        "seconds": seconds,
        "events_per_sec": env.events_processed / seconds if seconds else 0.0,
    }


def bench_allocator(repeats: int) -> List[dict]:
    """Seed vs new water-fill over the 10/100/1000-flow axis."""
    rows = []
    for n in FLOW_COUNTS:
        rng = random.Random(1000 + n)
        capacity = 100.0
        fleets = [make_fleet(n, rng, capacity) for _ in range(repeats)]
        env = Environment()
        link = SharedLink(env, capacity=capacity)

        def best_of(fn, passes=7):
            # Min over several passes: on a shared box a single pass can
            # absorb scheduler noise large enough to flip the gate.  GC is
            # paused during timing — earlier sections leave tens of
            # thousands of live objects, and collection pauses land
            # disproportionately on the faster allocator.
            best = float("inf")
            gc.collect()
            gc.disable()
            try:
                for _ in range(passes):
                    t0 = time.perf_counter()
                    for fleet in fleets:
                        fn(fleet)
                    best = min(best, time.perf_counter() - t0)
            finally:
                gc.enable()
            return best

        seed_s = best_of(lambda fleet: seed_water_fill(fleet, capacity))
        new_s = best_of(link._water_fill)

        # Sanity: same allocation (up to float noise) before comparing speed.
        seed_alloc = seed_water_fill(fleets[0], capacity)
        new_alloc = link._water_fill(fleets[0])
        for key, rate in seed_alloc.items():
            if abs(new_alloc[key] - rate) > 1e-9 * max(1.0, abs(rate)):
                raise AssertionError(f"allocator mismatch at {n} flows")

        rows.append(
            {
                "flows": n,
                "repeats": repeats,
                "seed_us_per_fill": 1e6 * seed_s / repeats,
                "new_us_per_fill": 1e6 * new_s / repeats,
                "speedup": seed_s / new_s if new_s else float("inf"),
            }
        )
    return rows


def bench_link_churn(cycles: int) -> List[dict]:
    """End-to-end transmit/complete cycles with N concurrent flows."""
    rows = []
    for n in FLOW_COUNTS:
        rng = random.Random(2000 + n)
        env = Environment()
        link = SharedLink(env, capacity=1000.0)
        flows = [
            link.open_flow(
                f"f{i}",
                weight=rng.choice((0.5, 1.0, 1.5)),
                demand=rng.uniform(0.5, 10.0),
            )
            for i in range(n)
        ]
        transfers = 0

        def sender(flow):
            nonlocal transfers
            for _ in range(cycles):
                yield link.transmit(flow, rng.uniform(10.0, 100.0))
                transfers += 1

        for flow in flows:
            env.process(sender(flow))
        t0 = time.perf_counter()
        env.run()
        seconds = time.perf_counter() - t0
        rows.append(
            {
                "flows": n,
                "transfers": transfers,
                "seconds": seconds,
                "transfers_per_sec": transfers / seconds if seconds else 0.0,
                "events_processed": env.events_processed,
                "pending_after_drain": env.pending_events,
            }
        )
    return rows


def bench_fleet(total_flows: int) -> List[dict]:
    """Open-loop 1000-flow fleet under every allocation policy."""
    specs = [
        FleetFlowSpec("hi", Compressibility.HIGH, 8_000_000),
        FleetFlowSpec("mod", Compressibility.MODERATE, 6_000_000),
        FleetFlowSpec("lo", Compressibility.LOW, 4_000_000),
    ]
    arrivals = FleetArrivalSpec(
        total_flows=total_flows,
        interval=2.0,
        mean=40.0,
        swing=20.0,
        period=600.0,
    )
    rows = []
    for policy in POLICIES:
        res = run_fleet_scenario(
            specs,
            arrivals=arrivals,
            policy=policy,
            seed=42,
            epoch_seconds=2.0,
            cores=8.0,
        )
        rows.append(
            {
                "policy": policy or "uncontrolled",
                "total_flows": res.flows_spawned,
                "peak_live": res.peak_live,
                "makespan_sim_s": res.makespan,
                "wall_seconds": res.wall_seconds,
                "events_processed": res.events_processed,
                "events_per_sec": res.events_per_second,
                "aggregate_goodput": res.aggregate_goodput,
            }
        )
        print(
            f"  fleet/{policy or 'uncontrolled'}: "
            f"{res.flows_spawned} flows (peak {res.peak_live} live) in "
            f"{res.wall_seconds:.2f}s wall, {res.events_processed} events",
            flush=True,
        )
    return rows


# ---------------------------------------------------------------------------
# Gates
# ---------------------------------------------------------------------------


def check_gate(payload: dict) -> List[str]:
    failures = []
    gate_row = next(
        (r for r in payload["allocator"] if r["flows"] == ALLOCATOR_GATE_FLOWS), None
    )
    if gate_row is None:
        failures.append(f"no allocator row at {ALLOCATOR_GATE_FLOWS} flows")
    elif gate_row["speedup"] < ALLOCATOR_SPEEDUP_FLOOR:
        failures.append(
            f"allocator at {ALLOCATOR_GATE_FLOWS} flows only "
            f"{gate_row['speedup']:.1f}x faster than the seed fill "
            f"(floor {ALLOCATOR_SPEEDUP_FLOOR:.0f}x)"
        )
    for row in payload["fleet"]:
        if row["wall_seconds"] > FLEET_WALL_CEILING_S:
            failures.append(
                f"fleet/{row['policy']}: {row['total_flows']}-flow run took "
                f"{row['wall_seconds']:.1f}s wall "
                f"(ceiling {FLEET_WALL_CEILING_S:.0f}s)"
            )
    for row in payload["link_churn"]:
        if row["pending_after_drain"] != 0:
            failures.append(
                f"link_churn at {row['flows']} flows left "
                f"{row['pending_after_drain']} pending events (heap leak)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller engine/churn passes, gates enforced",
    )
    parser.add_argument("--repeats", type=int, default=None, help="fills per cell")
    parser.add_argument("--out", default="BENCH_sim.json", help="JSON output path")
    args = parser.parse_args(argv)

    if args.quick:
        n_events = 50_000
        repeats = args.repeats or 5
        churn_cycles = 20
    else:
        n_events = 200_000
        repeats = args.repeats or 20
        churn_cycles = 50
    fleet_flows = 1000  # the headline claim is always measured at scale

    print(
        f"sim benchmark: engine {n_events} events, allocator repeats={repeats}, "
        f"fleet {fleet_flows} flows",
        flush=True,
    )
    payload = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "quick": args.quick,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        },
        "engine": bench_engine(n_events),
        "allocator": bench_allocator(repeats),
        "link_churn": bench_link_churn(churn_cycles),
        "fleet": bench_fleet(fleet_flows),
        "gates": {
            "allocator_speedup_floor": ALLOCATOR_SPEEDUP_FLOOR,
            "allocator_gate_flows": ALLOCATOR_GATE_FLOWS,
            "fleet_wall_ceiling_s": FLEET_WALL_CEILING_S,
        },
    }

    eng = payload["engine"]
    print(f"  engine: {eng['events_per_sec']:,.0f} events/s")
    for row in payload["allocator"]:
        print(
            f"  allocator/{row['flows']} flows: seed "
            f"{row['seed_us_per_fill']:.1f}us vs new "
            f"{row['new_us_per_fill']:.1f}us per fill "
            f"({row['speedup']:.1f}x)"
        )
    for row in payload["link_churn"]:
        print(
            f"  link_churn/{row['flows']} flows: "
            f"{row['transfers_per_sec']:,.0f} transfers/s"
        )

    with open(args.out, "w") as fp:
        json.dump(payload, fp, indent=2)
    print(f"matrix written to {args.out}")

    failures = check_gate(payload)
    for failure in failures:
        print(f"GATE FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("gate passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
