"""Telemetry overhead micro-benchmarks (tooling artifact, not a paper one).

The contract the subsystem makes (docs/telemetry.md):

* **Disabled** (no subscriber on the bus): instrumented code allocates
  no event objects — asserted exactly via the bus delivery counter —
  and the residual cost (one attribute read per hook site) is below
  measurement noise.
* **Attached** (metric bridge + in-memory exporter subscribed): the
  ``bench_engine.py`` DES scenario slows down by at most 5 %, because
  the engine's per-event hot loop publishes nothing — only epoch-level
  hooks do.

Timings use best-of-N (same rationale as ``codecs/stats.py``): the
minimum over repeats is the least noisy estimator of intrinsic cost.
The disabled and attached variants are timed in *interleaved* rounds
so a load spike on a shared CI machine hits both sides equally instead
of biasing whichever happened to run during it.
"""

from __future__ import annotations

import time

from repro.codecs.block import encode_block
from repro.codecs.zlib_codec import LightZlibCodec
from repro.data import Compressibility, SyntheticCorpus
from repro.sim import Environment
from repro.telemetry.events import BUS
from repro.telemetry.instrument import instrumented

#: Headroom for the "≤ 5 %" contract.
MAX_ATTACHED_OVERHEAD = 0.05


def best_of(fn, repeats: int = 7) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def interleaved_best_of(fn, repeats: int = 7):
    """Best-of timings for ``fn`` with the bus idle vs. exporters live.

    Each round times the disabled variant immediately followed by the
    attached one, so transient machine noise cannot land on only one
    side of the comparison.  Returns ``(disabled, attached)`` minima.
    """
    disabled = attached = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        disabled = min(disabled, time.perf_counter() - t0)
        with instrumented(capture_events=True):
            t0 = time.perf_counter()
            fn()
            attached = min(attached, time.perf_counter() - t0)
    return disabled, attached


def measure_overhead(fn, repeats: int = 7, attempts: int = 3):
    """Relative attached-vs-disabled overhead, robust to load spikes.

    A single measurement on a busy machine can read several percent
    high for reasons unrelated to the code under test, so re-measure up
    to ``attempts`` times and keep the lowest overhead seen — the
    attempt least polluted by noise.  Stops early once under the gate.
    """
    best = float("inf")
    best_pair = (0.0, 0.0)
    for _ in range(attempts):
        disabled, attached = interleaved_best_of(fn, repeats)
        overhead = attached / disabled - 1.0
        if overhead < best:
            best, best_pair = overhead, (disabled, attached)
        if best <= MAX_ATTACHED_OVERHEAD / 2:
            break
    return best, best_pair


def engine_scenario(n: int = 20_000) -> float:
    """The bench_engine.py ping-pong: pure DES overhead per event."""
    env = Environment()

    def ticker():
        for _ in range(n):
            yield env.timeout(1.0)

    env.run_process(ticker())
    return env.now


def test_bench_engine_disabled_allocates_no_events():
    """Zero-subscriber fast path: the run must not construct any event."""
    assert not BUS.active
    before = BUS.published
    engine_scenario()
    assert BUS.published == before


def test_bench_engine_overhead_with_exporters_attached():
    """bench_engine scenario: ≤ 5 % slower with live exporters."""
    engine_scenario(2_000)  # warm up allocator and bytecode caches
    overhead, (disabled, attached) = measure_overhead(engine_scenario)
    print(
        f"\nengine: disabled {disabled * 1e3:.2f} ms, "
        f"attached {attached * 1e3:.2f} ms, overhead {overhead * 100:+.2f}%"
    )
    assert overhead <= MAX_ATTACHED_OVERHEAD, (
        f"instrumentation overhead {overhead * 100:.1f}% exceeds "
        f"{MAX_ATTACHED_OVERHEAD * 100:.0f}% on the DES hot loop"
    )


def test_bench_block_path_overhead_with_exporters_attached():
    """Real codec path: per-block event cost is noise next to zlib."""
    payload = SyntheticCorpus(file_size=128 * 1024, seed=11).payload(
        Compressibility.MODERATE
    )
    codec = LightZlibCodec()

    def compress_blocks(n: int = 32) -> None:
        for _ in range(n):
            encode_block(payload, codec)

    compress_blocks(4)  # warm-up
    overhead, (disabled, attached) = measure_overhead(compress_blocks, repeats=5)
    with instrumented(capture_events=True) as session:
        compress_blocks(1)
    assert session.metrics_snapshot()["blocks.compress"] > 0
    print(
        f"\nblocks: disabled {disabled * 1e3:.2f} ms, "
        f"attached {attached * 1e3:.2f} ms, overhead {overhead * 100:+.2f}%"
    )
    assert overhead <= MAX_ATTACHED_OVERHEAD, (
        f"per-block instrumentation overhead {overhead * 100:.1f}% exceeds "
        f"{MAX_ATTACHED_OVERHEAD * 100:.0f}%"
    )
