"""Extension: robust rate signals under fluctuation — raw vs naive EWMA
(negative result) vs per-level memory."""

from repro.experiments import extensions

from conftest import run_experiment_benchmark


def test_bench_ext_memory(benchmark, scale):
    run_experiment_benchmark(benchmark, extensions.run_memory, scale=scale, repeats=3)
