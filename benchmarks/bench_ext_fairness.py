"""Extension: two adaptive senders sharing one link (fairness)."""

from repro.experiments import extensions

from conftest import run_experiment_benchmark


def test_bench_ext_fairness(benchmark, scale):
    run_experiment_benchmark(benchmark, extensions.run_fairness, scale=scale)
