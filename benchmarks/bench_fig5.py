"""Regenerate Figure 5: adaptivity trace on LOW data, 2 connections."""

from repro.experiments import fig5_adaptivity_low

from conftest import run_experiment_benchmark


def test_bench_fig5(benchmark, scale):
    run_experiment_benchmark(benchmark, fig5_adaptivity_low.run, scale=scale)
