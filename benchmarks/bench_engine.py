"""Simulator substrate micro-benchmarks (extra; not a paper artifact).

Event throughput of the DES core and allocation cost of the fluid link
— these bound how large a scenario the experiment harness can run.
"""

from __future__ import annotations

from repro.core import DecisionModel
from repro.sim import Environment, SharedLink


def test_bench_event_throughput(benchmark):
    """Ping-pong timeouts: pure engine overhead per event."""

    def run_events(n=20_000):
        env = Environment()

        def ticker():
            for _ in range(n):
                yield env.timeout(1.0)

        env.run_process(ticker())
        return env.now

    result = benchmark(run_events)
    assert result == 20_000.0


def test_bench_link_recompute(benchmark):
    """Flows joining/leaving force water-fill recomputation."""

    def run_link(n_flows=8, n_transfers=200):
        env = Environment()
        link = SharedLink(env, capacity=1e8)
        flows = [link.open_flow(f"f{i}") for i in range(n_flows)]

        def sender(flow):
            for _ in range(n_transfers):
                yield link.transmit(flow, 1e6)

        for flow in flows:
            env.process(sender(flow))
        env.run()
        return link.total_bytes

    total = benchmark(run_link)
    assert total == 8 * 200 * 1e6


def test_bench_allocation_preview(benchmark):
    """What-if pricing against the cached sorted allocation: schemes
    call this per decision epoch, so it must not pay a full re-fill."""

    def run_previews(n_flows=100, n_previews=2_000):
        env = Environment()
        link = SharedLink(env, capacity=1e8)
        flows = [link.open_flow(f"f{i}", demand=0.5e6 * (i + 1)) for i in range(n_flows)]
        for flow in flows:
            link.transmit(flow, 1e9)
        total = 0.0
        for i in range(n_previews):
            total += link.allocation_preview(1e5 * (i % 37 + 1))
        return total

    total = benchmark(run_previews)
    assert total > 0.0


def test_bench_decision_model(benchmark):
    """Decisions per second of Algorithm 1 (it runs every t seconds on
    the hot path of every channel)."""

    def run_decisions(n=10_000):
        model = DecisionModel(4)
        rates = {0: 90e6, 1: 200e6, 2: 150e6, 3: 27e6}
        level = 0
        for _ in range(n):
            level = model.observe(rates[level])
        return level

    benchmark(run_decisions)
