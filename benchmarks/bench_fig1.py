"""Regenerate Figure 1: displayed vs host CPU utilization during I/O."""

from repro.experiments import fig1_cpu_accuracy

from conftest import run_experiment_benchmark


def test_bench_fig1(benchmark, scale):
    run_experiment_benchmark(benchmark, fig1_cpu_accuracy.run, scale=scale)
