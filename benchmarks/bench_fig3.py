"""Regenerate Figure 3: file-write throughput distributions (XEN cache)."""

from repro.experiments import fig3_file_throughput

from conftest import run_experiment_benchmark


def test_bench_fig3(benchmark, scale):
    run_experiment_benchmark(benchmark, fig3_file_throughput.run, scale=scale)
