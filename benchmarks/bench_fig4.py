"""Regenerate Figure 4: adaptivity trace on HIGH data, no background."""

from repro.experiments import fig4_adaptivity_high

from conftest import run_experiment_benchmark


def test_bench_fig4(benchmark, scale):
    run_experiment_benchmark(benchmark, fig4_adaptivity_high.run, scale=scale)
